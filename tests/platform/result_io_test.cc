#include "platform/result_io.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TaskResult SampleResult() {
  TaskResult result;
  result.task_id = "abc/0";
  result.spec.dataset = "enwiki-mini-2018";
  result.spec.algorithm = "cyclerank";
  result.spec.params = ParamMap::Parse("k=3, sigma=exp").value();
  result.status = Status::OK();
  result.seconds = 0.25;
  result.ranking = {{0, 0.5}, {2, 0.25}, {1, 0.125}};
  return result;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("Ère post-vérité"), "Ère post-vérité");  // UTF-8
}

TEST(ResultIoTest, TaskResultJsonStructure) {
  const std::string json = TaskResultToJson(SampleResult());
  EXPECT_NE(json.find("\"task_id\":\"abc/0\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"enwiki-mini-2018\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"cyclerank\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"sigma\":\"exp\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.5"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIoTest, LabelsResolvedThroughGraph) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  builder.AddEdge("Italy", "Rome, the city");
  const Graph g = builder.Build().value();
  ResultExportOptions options;
  options.graph = &g;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\"node\":\"Pasta\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"Italy\""), std::string::npos);
}

TEST(ResultIoTest, TopKTruncatesJson) {
  ResultExportOptions options;
  options.top_k = 1;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\"node\":\"0\""), std::string::npos);
  EXPECT_EQ(json.find("\"node\":\"2\""), std::string::npos);
}

TEST(ResultIoTest, FailedTaskCarriesStatus) {
  TaskResult result = SampleResult();
  result.status = Status::NotFound("dataset 'x' not found");
  result.ranking.clear();
  const std::string json = TaskResultToJson(result);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("NotFound"), std::string::npos);
  EXPECT_NE(json.find("\"ranking\":[]"), std::string::npos);
}

TEST(ResultIoTest, PrettyPrintingIndents) {
  ResultExportOptions options;
  options.pretty = true;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\n  \"task_id\": \"abc/0\""), std::string::npos);
  EXPECT_NE(json.find("\n}"), std::string::npos);
}

TEST(ResultIoTest, ComparisonJsonJoinsTasks) {
  ComparisonStatus status;
  status.comparison_id = "3a73ff34-8720-4ce8-859e-34e70f339907";
  status.task_ids = {"id/0", "id/1"};
  status.states = {TaskState::kCompleted, TaskState::kFailed};
  status.completed = 1;
  status.failed = 1;
  status.done = true;
  const std::string json = ComparisonToJson(status, {SampleResult()});
  EXPECT_NE(json.find("\"comparison_id\":\"3a73ff34-"), std::string::npos);
  EXPECT_NE(json.find("\"done\":true"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"results\":[{"), std::string::npos);
}

TEST(ResultIoTest, CsvWithHeaderAndRows) {
  const std::string csv = RankingToCsv(SampleResult().ranking);
  EXPECT_EQ(csv,
            "rank,node,score\n"
            "1,0,0.5\n"
            "2,2,0.25\n"
            "3,1,0.125\n");
}

TEST(ResultIoTest, CsvQuotesLabelsWithCommas) {
  GraphBuilder builder;
  builder.AddEdge("US pres. election, 2016", "a \"quoted\" label");
  const Graph g = builder.Build().value();
  ResultExportOptions options;
  options.graph = &g;
  RankedList ranking = {{0, 1.0}, {1, 0.5}};
  const std::string csv = RankingToCsv(ranking, options);
  EXPECT_NE(csv.find("\"US pres. election, 2016\""), std::string::npos);
  EXPECT_NE(csv.find("\"a \"\"quoted\"\" label\""), std::string::npos);
}

TEST(ResultIoTest, CsvTopK) {
  ResultExportOptions options;
  options.top_k = 2;
  const std::string csv = RankingToCsv(SampleResult().ranking, options);
  EXPECT_NE(csv.find("\n2,"), std::string::npos);
  EXPECT_EQ(csv.find("\n3,"), std::string::npos);
}

}  // namespace
}  // namespace cyclerank
