#include "platform/result_io.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TaskResult SampleResult() {
  TaskResult result;
  result.task_id = "abc/0";
  result.spec.dataset = "enwiki-mini-2018";
  result.spec.algorithm = "cyclerank";
  result.spec.params = ParamMap::Parse("k=3, sigma=exp").value();
  result.status = Status::OK();
  result.seconds = 0.25;
  result.ranking = {{0, 0.5}, {2, 0.25}, {1, 0.125}};
  return result;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("Ère post-vérité"), "Ère post-vérité");  // UTF-8
}

TEST(ResultIoTest, TaskResultJsonStructure) {
  const std::string json = TaskResultToJson(SampleResult());
  EXPECT_NE(json.find("\"task_id\":\"abc/0\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"enwiki-mini-2018\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"cyclerank\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"sigma\":\"exp\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.5"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIoTest, LabelsResolvedThroughGraph) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  builder.AddEdge("Italy", "Rome, the city");
  const Graph g = builder.Build().value();
  ResultExportOptions options;
  options.graph = &g;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\"node\":\"Pasta\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"Italy\""), std::string::npos);
}

TEST(ResultIoTest, TopKTruncatesJson) {
  ResultExportOptions options;
  options.top_k = 1;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\"node\":\"0\""), std::string::npos);
  EXPECT_EQ(json.find("\"node\":\"2\""), std::string::npos);
}

TEST(ResultIoTest, FailedTaskCarriesStatus) {
  TaskResult result = SampleResult();
  result.status = Status::NotFound("dataset 'x' not found");
  result.ranking.clear();
  const std::string json = TaskResultToJson(result);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("NotFound"), std::string::npos);
  EXPECT_NE(json.find("\"ranking\":[]"), std::string::npos);
}

TEST(ResultIoTest, PrettyPrintingIndents) {
  ResultExportOptions options;
  options.pretty = true;
  const std::string json = TaskResultToJson(SampleResult(), options);
  EXPECT_NE(json.find("\n  \"task_id\": \"abc/0\""), std::string::npos);
  EXPECT_NE(json.find("\n}"), std::string::npos);
}

TEST(ResultIoTest, ComparisonJsonJoinsTasks) {
  ComparisonStatus status;
  status.comparison_id = "3a73ff34-8720-4ce8-859e-34e70f339907";
  status.task_ids = {"id/0", "id/1"};
  status.states = {TaskState::kCompleted, TaskState::kFailed};
  status.completed = 1;
  status.failed = 1;
  status.done = true;
  const std::string json = ComparisonToJson(status, {SampleResult()});
  EXPECT_NE(json.find("\"comparison_id\":\"3a73ff34-"), std::string::npos);
  EXPECT_NE(json.find("\"done\":true"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"results\":[{"), std::string::npos);
}

TEST(ResultIoTest, CsvWithHeaderAndRows) {
  const std::string csv = RankingToCsv(SampleResult().ranking);
  EXPECT_EQ(csv,
            "rank,node,score\n"
            "1,0,0.5\n"
            "2,2,0.25\n"
            "3,1,0.125\n");
}

TEST(ResultIoTest, CsvQuotesLabelsWithCommas) {
  GraphBuilder builder;
  builder.AddEdge("US pres. election, 2016", "a \"quoted\" label");
  const Graph g = builder.Build().value();
  ResultExportOptions options;
  options.graph = &g;
  RankedList ranking = {{0, 1.0}, {1, 0.5}};
  const std::string csv = RankingToCsv(ranking, options);
  EXPECT_NE(csv.find("\"US pres. election, 2016\""), std::string::npos);
  EXPECT_NE(csv.find("\"a \"\"quoted\"\" label\""), std::string::npos);
}

TEST(ResultIoTest, CsvTopK) {
  ResultExportOptions options;
  options.top_k = 2;
  const std::string csv = RankingToCsv(SampleResult().ranking, options);
  EXPECT_NE(csv.find("\n2,"), std::string::npos);
  EXPECT_EQ(csv.find("\n3,"), std::string::npos);
}

TEST(ResultCodecTest, RoundTripIsBitIdentical) {
  TaskResult result = SampleResult();
  // Scores that stress textual formats: denormal, negative zero, and a
  // value with no short decimal rendering. The binary codec must carry
  // the exact bit patterns.
  result.ranking.push_back({7, 5e-324});
  result.ranking.push_back({8, -0.0});
  result.ranking.push_back({9, 0.1 + 0.2});
  result.seconds = 1.0 / 3.0;
  const std::string bytes = SerializeTaskResult(result);
  const TaskResult decoded = DeserializeTaskResult(bytes).value();
  EXPECT_EQ(decoded.task_id, result.task_id);
  EXPECT_EQ(decoded.spec, result.spec);
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_EQ(decoded.ranking, result.ranking);
  EXPECT_EQ(decoded.seconds, result.seconds);
  EXPECT_TRUE(std::signbit(decoded.ranking[decoded.ranking.size() - 2].score));
  // Bit-identical: re-serializing yields the same bytes.
  EXPECT_EQ(SerializeTaskResult(decoded), bytes);
}

TEST(ResultCodecTest, FailedResultKeepsStatusAndSeparatorsInParams) {
  TaskResult result;
  result.task_id = "t1";
  result.spec.dataset = "d";
  result.spec.algorithm = "a";
  // A value containing the param grammar's separators survives the codec
  // (it is encoded as explicit pairs, not re-parsed text).
  result.spec.params.Set("note", "a,b;c=d");
  result.status = Status::NotFound("dataset 'd' not found");
  const TaskResult decoded =
      DeserializeTaskResult(SerializeTaskResult(result)).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.status.message(), "dataset 'd' not found");
  EXPECT_EQ(decoded.spec.params.GetString("note", ""), "a,b;c=d");
  EXPECT_TRUE(decoded.ranking.empty());
}

TEST(ResultCodecTest, RejectsCorruptBuffers) {
  const std::string bytes = SerializeTaskResult(SampleResult());
  EXPECT_EQ(DeserializeTaskResult("garbage").status().code(),
            StatusCode::kParseError);
  for (size_t len = 0; len < bytes.size(); len += 5) {
    EXPECT_FALSE(DeserializeTaskResult(bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DeserializeTaskResult(bytes + "x").ok());
  // An out-of-range status code is rejected, not cast blindly.
  std::string tampered = bytes;
  const size_t magic = 6;
  // task_id, dataset, algorithm, params all precede the status code; find
  // it structurally by re-encoding a result with known field sizes.
  TaskResult probe;
  probe.task_id = "t";
  probe.status = Status::OK();
  std::string probe_bytes = SerializeTaskResult(probe);
  // status code offset: magic + (8+1) + 8 + 8 + 8 (empty strings/params)
  const size_t code_pos = magic + 9 + 8 + 8 + 8;
  probe_bytes[code_pos] = '\x7f';
  EXPECT_FALSE(DeserializeTaskResult(probe_bytes).ok());
}

}  // namespace
}  // namespace cyclerank
