#include "platform/executor.h"

#include <atomic>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : store_(nullptr),
        executor_(&store_, &AlgorithmRegistry::Default(), &status_) {
    GraphBuilder builder;
    builder.AddEdge("a", "b");
    builder.AddEdge("b", "a");
    builder.AddEdge("b", "c");
    builder.AddEdge("c", "a");
    (void)store_.PutDataset("tiny", builder.BuildShared().value());
  }

  TaskSpec Spec(const std::string& algorithm, const std::string& params) {
    TaskSpec spec;
    spec.dataset = "tiny";
    spec.algorithm = algorithm;
    spec.params = ParamMap::Parse(params).value();
    return spec;
  }

  Datastore store_;
  StatusService status_;
  Executor executor_;
};

TEST_F(ExecutorTest, CompletesSuccessfulTask) {
  ASSERT_TRUE(status_.Track("t1").ok());
  executor_.Execute("t1", Spec("pagerank", "alpha=0.85"));
  EXPECT_EQ(status_.GetState("t1").value(), TaskState::kCompleted);
  const TaskResult result = store_.GetResult("t1").value();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.ranking.size(), 3u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST_F(ExecutorTest, WritesLogLines) {
  ASSERT_TRUE(status_.Track("t1").ok());
  executor_.Execute("t1", Spec("cyclerank", "source=a, k=3"));
  const auto log = store_.GetLog("t1");
  ASSERT_GE(log.size(), 3u);
  EXPECT_NE(log.front().find("task accepted"), std::string::npos);
  EXPECT_NE(log.back().find("completed"), std::string::npos);
}

TEST_F(ExecutorTest, MissingDatasetFailsTask) {
  ASSERT_TRUE(status_.Track("t").ok());
  TaskSpec spec = Spec("pagerank", "");
  spec.dataset = "ghost";
  executor_.Execute("t", spec);
  EXPECT_EQ(status_.GetState("t").value(), TaskState::kFailed);
  const TaskResult result = store_.GetResult("t").value();
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(result.ranking.empty());
}

TEST_F(ExecutorTest, UnknownAlgorithmFailsTask) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("hits", ""));
  EXPECT_EQ(status_.GetState("t").value(), TaskState::kFailed);
}

TEST_F(ExecutorTest, MissingReferenceFailsPersonalizedTask) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("cyclerank", "k=3"));  // no source=
  EXPECT_EQ(status_.GetState("t").value(), TaskState::kFailed);
  EXPECT_EQ(store_.GetResult("t").value().status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, BadParameterValueFailsTask) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("pagerank", "alpha=2.0"));
  EXPECT_EQ(status_.GetState("t").value(), TaskState::kFailed);
}

TEST_F(ExecutorTest, CancellationBeforeStart) {
  ASSERT_TRUE(status_.Track("t").ok());
  std::atomic<bool> cancelled{true};
  executor_.Execute("t", Spec("pagerank", ""), &cancelled);
  EXPECT_EQ(status_.GetState("t").value(), TaskState::kCancelled);
  EXPECT_EQ(store_.GetResult("t").value().status.code(),
            StatusCode::kCancelled);
}

TEST_F(ExecutorTest, TopKParameterLimitsRanking) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("pagerank", "top_k=2"));
  EXPECT_EQ(store_.GetResult("t").value().ranking.size(), 2u);
}

TEST_F(ExecutorTest, LogsPinnedSnapshotWithByteFootprint) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("pagerank", ""));
  const GraphPtr g = store_.GetDataset("tiny").value();
  bool found = false;
  for (const std::string& line : store_.GetLog("t")) {
    if (line.find("pinned dataset snapshot 'tiny' (" +
                  std::to_string(g->MemoryBytes()) + " bytes)") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, DefaultThreadsAppliesOnlyWhenSpecIsSilent) {
  PlatformOptions options;
  options.default_threads = 3;
  Executor executor(&store_, &AlgorithmRegistry::Default(), &status_, options);

  const auto thread_log_line = [this](const std::string& task_id) {
    for (const std::string& line : store_.GetLog(task_id)) {
      if (line.find("kernel thread(s)") != std::string::npos) return line;
    }
    return std::string();
  };

  // No threads= in the spec: the deployment default applies.
  ASSERT_TRUE(status_.Track("silent").ok());
  executor.Execute("silent", Spec("pagerank", "alpha=0.85"));
  EXPECT_NE(thread_log_line("silent").find("3 kernel thread(s)"),
            std::string::npos);

  // An explicit threads= always wins over the default.
  ASSERT_TRUE(status_.Track("explicit").ok());
  executor.Execute("explicit", Spec("pagerank", "alpha=0.85, threads=2"));
  EXPECT_NE(thread_log_line("explicit").find("2 kernel thread(s)"),
            std::string::npos);

  // The ranking is bit-identical either way (threads are execution-only).
  EXPECT_EQ(store_.GetResult("silent").value().ranking,
            store_.GetResult("explicit").value().ranking);
}

TEST_F(ExecutorTest, ResultRankingMatchesDirectRun) {
  ASSERT_TRUE(status_.Track("t").ok());
  executor_.Execute("t", Spec("cyclerank", "source=a, k=3"));
  const TaskResult result = store_.GetResult("t").value();

  const GraphPtr g = store_.GetDataset("tiny").value();
  const auto algorithm = MakeAlgorithm(AlgorithmKind::kCycleRank);
  AlgorithmRequest request;
  request.reference = g->FindNode("a");
  const RankedList direct = algorithm->Run(*g, request).value();
  EXPECT_EQ(result.ranking, direct);
}

}  // namespace
}  // namespace cyclerank
