#include "platform/graph_store.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

/// Deterministic byte size of a `shards`-way view of `graph` (built with
/// the same partitioner the store uses) — the budgeted sharded tests use
/// it to compute exact eviction thresholds.
size_t ViewBytes(const GraphPtr& graph, uint32_t shards) {
  return ShardedGraph::Build(graph, shards, ContiguousRangePartitioner())
      .value()
      .MemoryBytes();
}

TEST(GraphStoreTest, UnboundedByDefault) {
  GraphStore store;
  EXPECT_EQ(store.max_bytes(), 0u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put("g" + std::to_string(i), ChainGraph(64)).ok());
  }
  EXPECT_EQ(store.stats().entries, 50u);
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(GraphStoreTest, RejectsBadInput) {
  GraphStore store;
  EXPECT_EQ(store.Put("", ChainGraph(4)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put("g", nullptr).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(store.Put("g", ChainGraph(4)).ok());
  EXPECT_EQ(store.Put("g", ChainGraph(4)).code(), StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, OversizedUploadRejectedWithByteFigures) {
  const GraphPtr big = ChainGraph(1000);
  GraphStore store(big->MemoryBytes() - 1);
  const Status status = store.Put("big", big);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The error states both the graph's footprint and the budget.
  EXPECT_NE(status.message().find(std::to_string(big->MemoryBytes())),
            std::string::npos);
  EXPECT_NE(status.message().find(std::to_string(big->MemoryBytes() - 1)),
            std::string::npos);
  EXPECT_EQ(store.stats().rejections, 1u);
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(GraphStoreTest, EvictsLeastRecentlyQueriedPastBudget) {
  const GraphPtr graph = ChainGraph(100);
  // Budget fits exactly two graphs of this size.
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.Get("b").ok());
  EXPECT_TRUE(store.Get("c").ok());
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 2 * graph->MemoryBytes());
}

TEST(GraphStoreTest, GetBumpsRecencySoHotDatasetsSurvive) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());
  // "a" is older but queried more recently, so "b" is the LRU victim.
  ASSERT_TRUE(store.Get("a").ok());
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_EQ(store.Get("b").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.Get("c").ok());
}

TEST(GraphStoreTest, NeverUploadedStaysNotFound) {
  GraphStore store(1 << 20);
  EXPECT_EQ(store.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(GraphStoreTest, ReUploadingAnEvictedNameRevivesIt) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  ASSERT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());  // revives, evicts "b"
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_EQ(store.Get("b").status().code(), StatusCode::kExpired);
}

TEST(GraphStoreTest, EvictionNeverFreesAPinnedSnapshot) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  // A client (an executor) pins the snapshot before eviction.
  const GraphPtr pinned = store.Get("a").value();
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  // The pinned snapshot is alive and intact: the store only dropped its
  // own reference.
  EXPECT_EQ(pinned->num_nodes(), 100u);
  EXPECT_EQ(pinned->num_edges(), 99u);
  EXPECT_TRUE(pinned->HasEdge(0, 1));
}

TEST(GraphStoreTest, RebindingANameChangesItsGeneration) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  EXPECT_EQ(store.Generation("a"), 0u);  // not live
  ASSERT_TRUE(store.Put("a", graph).ok());
  const uint64_t first = store.Generation("a");
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Generation("a"), 0u);
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());  // re-binds "a"
  EXPECT_NE(store.Generation("a"), first);
  EXPECT_GT(store.Generation("a"), 0u);
}

TEST(GraphStoreTest, NamesAreSortedAndLiveOnly) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("zeta", graph).ok());
  ASSERT_TRUE(store.Put("alpha", ChainGraph(100)).ok());
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "zeta"}));
  ASSERT_TRUE(store.Put("mid", ChainGraph(100)).ok());  // evicts "zeta"
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "mid"}));
}

TEST(GraphStoreTest, StatsCountHitsAndMisses) {
  GraphStore store;
  ASSERT_TRUE(store.Put("a", ChainGraph(8)).ok());
  (void)store.Get("a");
  (void)store.Get("a");
  (void)store.Get("nope");
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.uploads, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(GraphStoreSpillTest, EvictionDemotesToDiskAndGetReloads) {
  const GraphPtr graph = ChainGraph(100);
  SpillTier spill(FreshSpillDir("gs_demote"), 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  const uint64_t gen_a = store.Generation("a");
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a" → disk
  EXPECT_TRUE(spill.Contains("a"));
  EXPECT_EQ(store.stats().spills, 1u);
  // The demoted binding keeps its generation — same content, merely cold.
  EXPECT_EQ(store.Generation("a"), gen_a);
  // Get transparently reloads it (most-recent), demoting "b" in turn.
  const GraphPtr reloaded = store.Get("a").value();
  EXPECT_EQ(reloaded->num_nodes(), 100u);
  EXPECT_EQ(reloaded->MemoryBytes(), graph->MemoryBytes());
  EXPECT_EQ(reloaded->Serialize(), graph->Serialize());  // bit-identical
  EXPECT_EQ(store.Generation("a"), gen_a);
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.spills, 2u);  // "b" was demoted by the reload
  EXPECT_TRUE(store.Get("b").ok());
}

TEST(GraphStoreSpillTest, DiskResidentNameCountsAsUploaded) {
  const GraphPtr graph = ChainGraph(100);
  SpillTier spill(FreshSpillDir("gs_resident"), 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
  // A spilled dataset is still uploaded: the name cannot be re-bound...
  const Status dup = store.Put("a", ChainGraph(50));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("disk"), std::string::npos);
  // ...and it is still listed.
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(GraphStoreSpillTest, PrunedSpillExpiresWithAPrunedMessage) {
  const GraphPtr graph = ChainGraph(100);
  // The disk tier holds exactly one spilled graph: the second demotion
  // prunes the first.
  SpillTier spill(FreshSpillDir("gs_pruned"),
                  graph->Serialize().size() + 200, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());  // "b" → disk, "a" pruned
  const Status pruned = store.Get("a").status();
  EXPECT_EQ(pruned.code(), StatusCode::kExpired);
  EXPECT_NE(pruned.message().find("pruned"), std::string::npos);
  // "b" is still disk-resident and reloads fine.
  EXPECT_TRUE(store.Get("b").ok());
}

TEST(GraphStoreSpillTest, GenerationCounterResumesPastRecoveredBindings) {
  const std::string dir = FreshSpillDir("gs_genresume");
  const GraphPtr graph = ChainGraph(100);
  uint64_t spilled_generation = 0;
  {
    SpillTier spill(dir, 0, "dataset");
    GraphStore store(graph->MemoryBytes(), &spill);
    ASSERT_TRUE(store.Put("a", graph).ok());
    ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
    spilled_generation = store.Generation("a");
    ASSERT_GT(spilled_generation, 0u);
  }
  // "Restart": a fresh store over the same directory. The recovered
  // binding keeps its generation, and new uploads get strictly larger
  // ones — fingerprints can never collide across the restart.
  SpillTier spill(dir, 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  EXPECT_EQ(store.Generation("a"), spilled_generation);
  ASSERT_TRUE(store.Put("fresh", ChainGraph(50)).ok());
  EXPECT_GT(store.Generation("fresh"), spilled_generation);
  EXPECT_EQ(store.Get("a").value()->Serialize(), graph->Serialize());
}

TEST(GraphStoreShardedTest, BuildsOnceThenServesFromTheSlot) {
  GraphStore store;
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());
  const GraphPtr pinned = store.Get("a").value();
  const ShardedGraphPtr first = store.GetSharded("a", pinned, 4).value();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->num_shards(), 4u);
  EXPECT_EQ(first->parent(), pinned);
  // The second call is a slot hit: the exact same view object comes back.
  const ShardedGraphPtr second = store.GetSharded("a", pinned, 4).value();
  EXPECT_EQ(second, first);
  // A different shard count is a different view, cached independently.
  const ShardedGraphPtr other = store.GetSharded("a", pinned, 2).value();
  EXPECT_NE(other, first);
  EXPECT_EQ(other->num_shards(), 2u);
  EXPECT_EQ(store.GetSharded("a", pinned, 2).value(), other);
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.sharded_builds, 2u);
  EXPECT_EQ(stats.sharded_hits, 2u);
}

TEST(GraphStoreShardedTest, CachedViewsChargeTheByteBudget) {
  GraphStore store;
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());
  const GraphPtr pinned = store.Get("a").value();
  const size_t before = store.stats().bytes;
  EXPECT_EQ(before, pinned->MemoryBytes());
  const ShardedGraphPtr view = store.GetSharded("a", pinned, 3).value();
  // The slot now carries graph + view bytes.
  EXPECT_EQ(store.stats().bytes, before + view->MemoryBytes());
}

TEST(GraphStoreShardedTest, RejectsBadInput) {
  GraphStore store;
  ASSERT_TRUE(store.Put("a", ChainGraph(10)).ok());
  const GraphPtr pinned = store.Get("a").value();
  EXPECT_EQ(store.GetSharded("a", nullptr, 4).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.GetSharded("a", pinned, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphStoreShardedTest, UnknownNameGetsACorrectUncachedView) {
  // Catalog datasets never live in the graph store; the view is still
  // built (correctness does not depend on caching), just not retained.
  GraphStore store;
  const GraphPtr pinned = ChainGraph(50);
  const ShardedGraphPtr view = store.GetSharded("catalog", pinned, 4).value();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->parent(), pinned);
  // Nothing was cached: the next call builds again.
  const ShardedGraphPtr again = store.GetSharded("catalog", pinned, 4).value();
  EXPECT_NE(again, view);
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.sharded_builds, 2u);
  EXPECT_EQ(stats.sharded_hits, 0u);
}

TEST(GraphStoreShardedTest, ReboundNameServesThePinnedSnapshotUncached) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  const GraphPtr pinned = store.Get("a").value();
  // Evict "a" and re-bind the name to different content.
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  ASSERT_TRUE(store.Put("a", ChainGraph(40)).ok());   // re-binds, evicts "b"
  // The view must mirror the *pinned* snapshot, not the name's new
  // binding — and it must not be cached into the rebound slot.
  const ShardedGraphPtr view = store.GetSharded("a", pinned, 2).value();
  EXPECT_EQ(view->parent(), pinned);
  EXPECT_EQ(view->parent()->num_nodes(), 100u);
  EXPECT_EQ(store.stats().sharded_hits, 0u);
  EXPECT_NE(store.GetSharded("a", pinned, 2).value(), view);
}

TEST(GraphStoreShardedTest, ViewTooLargeForTheBudgetServedTransiently) {
  const GraphPtr graph = ChainGraph(100);
  // The budget fits the graph but not graph + any sharded view.
  GraphStore store(graph->MemoryBytes() + 1);
  ASSERT_TRUE(store.Put("a", graph).ok());
  const GraphPtr pinned = store.Get("a").value();
  const ShardedGraphPtr view = store.GetSharded("a", pinned, 2).value();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->parent(), pinned);
  // The slot was not grown (caching would overflow it alone) and the
  // dataset itself stays resident.
  EXPECT_EQ(store.stats().bytes, graph->MemoryBytes());
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_NE(store.GetSharded("a", pinned, 2).value(), view);
}

TEST(GraphStoreShardedTest, CachingAViewCanDemoteColderDatasets) {
  const GraphPtr graph = ChainGraph(100);
  // Both graphs plus the view overflow the budget by exactly one byte:
  // growing the hot slot with the view evicts the colder dataset.
  GraphStore store(2 * graph->MemoryBytes() + ViewBytes(graph, 2) - 1);
  ASSERT_TRUE(store.Put("cold", ChainGraph(100)).ok());
  ASSERT_TRUE(store.Put("hot", graph).ok());
  const GraphPtr pinned = store.Get("hot").value();
  const ShardedGraphPtr view = store.GetSharded("hot", pinned, 2).value();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(store.Get("cold").status().code(), StatusCode::kExpired);
  // The slot that grew is never its own victim.
  EXPECT_TRUE(store.Get("hot").ok());
  EXPECT_EQ(store.GetSharded("hot", pinned, 2).value(), view);
}

TEST(GraphStoreShardedTest, EvictionDropsTheViewsWithTheSlot) {
  const GraphPtr graph = ChainGraph(100);
  const GraphPtr big = ChainGraph(150);
  // graph + view fit; adding "big" overflows by one byte and evicts the
  // grown slot wholesale.
  GraphStore store(graph->MemoryBytes() + ViewBytes(graph, 2) +
                   big->MemoryBytes() - 1);
  ASSERT_TRUE(store.Put("a", graph).ok());
  const GraphPtr pinned = store.Get("a").value();
  const ShardedGraphPtr view = store.GetSharded("a", pinned, 2).value();
  // Evicting "a" drops graph and views; the store's accounting returns to
  // exactly the surviving dataset's bytes.
  ASSERT_TRUE(store.Put("big", big).ok());  // evicts "a"
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  EXPECT_EQ(store.stats().bytes, big->MemoryBytes());
  // The caller's handles stay alive — eviction only drops the store's
  // references.
  EXPECT_EQ(view->parent(), pinned);
  EXPECT_EQ(view->OutNeighbors(0, 0).size(), 1u);
}

TEST(GraphStoreShardedSpillTest, ReloadedDatasetStartsWithNoViews) {
  const GraphPtr graph = ChainGraph(100);
  SpillTier spill(FreshSpillDir("gs_sharded_spill"), 0, "dataset");
  // One graph + one view fit (so the view gets cached); the second graph
  // overflows and demotes "a" to disk.
  GraphStore store(2 * graph->MemoryBytes() + ViewBytes(graph, 2) - 1,
                   &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  const GraphPtr pinned = store.Get("a").value();
  (void)store.GetSharded("a", pinned, 2).value();
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
  // Only the parent graph was serialized; the reloaded binding rebuilds
  // views on demand (against its *new* snapshot pointer).
  const GraphPtr reloaded = store.Get("a").value();
  const size_t builds_before = store.stats().sharded_builds;
  const ShardedGraphPtr rebuilt = store.GetSharded("a", reloaded, 2).value();
  EXPECT_EQ(rebuilt->parent(), reloaded);
  EXPECT_EQ(store.stats().sharded_builds, builds_before + 1);
  // And the rebuilt view is cached like any other.
  EXPECT_EQ(store.GetSharded("a", reloaded, 2).value(), rebuilt);
}

TEST(GraphStoreTest, EvictionMarkersAreBounded) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("g0", graph).ok());
  // Evict far past the marker bound: old markers fall off FIFO and those
  // names answer NotFound again, so the marker set cannot grow forever.
  const size_t churn = GraphStore::kMaxEvictionMarkers + 10;
  for (size_t i = 1; i <= churn; ++i) {
    ASSERT_TRUE(store.Put("g" + std::to_string(i), ChainGraph(100)).ok());
  }
  EXPECT_EQ(store.Get("g0").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Get("g" + std::to_string(churn - 1)).status().code(),
            StatusCode::kExpired);
}

}  // namespace
}  // namespace cyclerank
