#include "platform/graph_store.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

TEST(GraphStoreTest, UnboundedByDefault) {
  GraphStore store;
  EXPECT_EQ(store.max_bytes(), 0u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put("g" + std::to_string(i), ChainGraph(64)).ok());
  }
  EXPECT_EQ(store.stats().entries, 50u);
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(GraphStoreTest, RejectsBadInput) {
  GraphStore store;
  EXPECT_EQ(store.Put("", ChainGraph(4)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put("g", nullptr).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(store.Put("g", ChainGraph(4)).ok());
  EXPECT_EQ(store.Put("g", ChainGraph(4)).code(), StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, OversizedUploadRejectedWithByteFigures) {
  const GraphPtr big = ChainGraph(1000);
  GraphStore store(big->MemoryBytes() - 1);
  const Status status = store.Put("big", big);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The error states both the graph's footprint and the budget.
  EXPECT_NE(status.message().find(std::to_string(big->MemoryBytes())),
            std::string::npos);
  EXPECT_NE(status.message().find(std::to_string(big->MemoryBytes() - 1)),
            std::string::npos);
  EXPECT_EQ(store.stats().rejections, 1u);
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(GraphStoreTest, EvictsLeastRecentlyQueriedPastBudget) {
  const GraphPtr graph = ChainGraph(100);
  // Budget fits exactly two graphs of this size.
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.Get("b").ok());
  EXPECT_TRUE(store.Get("c").ok());
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 2 * graph->MemoryBytes());
}

TEST(GraphStoreTest, GetBumpsRecencySoHotDatasetsSurvive) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());
  // "a" is older but queried more recently, so "b" is the LRU victim.
  ASSERT_TRUE(store.Get("a").ok());
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_EQ(store.Get("b").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.Get("c").ok());
}

TEST(GraphStoreTest, NeverUploadedStaysNotFound) {
  GraphStore store(1 << 20);
  EXPECT_EQ(store.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(GraphStoreTest, ReUploadingAnEvictedNameRevivesIt) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  ASSERT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());  // revives, evicts "b"
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_EQ(store.Get("b").status().code(), StatusCode::kExpired);
}

TEST(GraphStoreTest, EvictionNeverFreesAPinnedSnapshot) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("a", graph).ok());
  // A client (an executor) pins the snapshot before eviction.
  const GraphPtr pinned = store.Get("a").value();
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kExpired);
  // The pinned snapshot is alive and intact: the store only dropped its
  // own reference.
  EXPECT_EQ(pinned->num_nodes(), 100u);
  EXPECT_EQ(pinned->num_edges(), 99u);
  EXPECT_TRUE(pinned->HasEdge(0, 1));
}

TEST(GraphStoreTest, RebindingANameChangesItsGeneration) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  EXPECT_EQ(store.Generation("a"), 0u);  // not live
  ASSERT_TRUE(store.Put("a", graph).ok());
  const uint64_t first = store.Generation("a");
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a"
  EXPECT_EQ(store.Generation("a"), 0u);
  ASSERT_TRUE(store.Put("a", ChainGraph(100)).ok());  // re-binds "a"
  EXPECT_NE(store.Generation("a"), first);
  EXPECT_GT(store.Generation("a"), 0u);
}

TEST(GraphStoreTest, NamesAreSortedAndLiveOnly) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(2 * graph->MemoryBytes());
  ASSERT_TRUE(store.Put("zeta", graph).ok());
  ASSERT_TRUE(store.Put("alpha", ChainGraph(100)).ok());
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "zeta"}));
  ASSERT_TRUE(store.Put("mid", ChainGraph(100)).ok());  // evicts "zeta"
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "mid"}));
}

TEST(GraphStoreTest, StatsCountHitsAndMisses) {
  GraphStore store;
  ASSERT_TRUE(store.Put("a", ChainGraph(8)).ok());
  (void)store.Get("a");
  (void)store.Get("a");
  (void)store.Get("nope");
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.uploads, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(GraphStoreSpillTest, EvictionDemotesToDiskAndGetReloads) {
  const GraphPtr graph = ChainGraph(100);
  SpillTier spill(FreshSpillDir("gs_demote"), 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  const uint64_t gen_a = store.Generation("a");
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // evicts "a" → disk
  EXPECT_TRUE(spill.Contains("a"));
  EXPECT_EQ(store.stats().spills, 1u);
  // The demoted binding keeps its generation — same content, merely cold.
  EXPECT_EQ(store.Generation("a"), gen_a);
  // Get transparently reloads it (most-recent), demoting "b" in turn.
  const GraphPtr reloaded = store.Get("a").value();
  EXPECT_EQ(reloaded->num_nodes(), 100u);
  EXPECT_EQ(reloaded->MemoryBytes(), graph->MemoryBytes());
  EXPECT_EQ(reloaded->Serialize(), graph->Serialize());  // bit-identical
  EXPECT_EQ(store.Generation("a"), gen_a);
  const GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.spills, 2u);  // "b" was demoted by the reload
  EXPECT_TRUE(store.Get("b").ok());
}

TEST(GraphStoreSpillTest, DiskResidentNameCountsAsUploaded) {
  const GraphPtr graph = ChainGraph(100);
  SpillTier spill(FreshSpillDir("gs_resident"), 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
  // A spilled dataset is still uploaded: the name cannot be re-bound...
  const Status dup = store.Put("a", ChainGraph(50));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("disk"), std::string::npos);
  // ...and it is still listed.
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(GraphStoreSpillTest, PrunedSpillExpiresWithAPrunedMessage) {
  const GraphPtr graph = ChainGraph(100);
  // The disk tier holds exactly one spilled graph: the second demotion
  // prunes the first.
  SpillTier spill(FreshSpillDir("gs_pruned"),
                  graph->Serialize().size() + 200, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  ASSERT_TRUE(store.Put("a", graph).ok());
  ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
  ASSERT_TRUE(store.Put("c", ChainGraph(100)).ok());  // "b" → disk, "a" pruned
  const Status pruned = store.Get("a").status();
  EXPECT_EQ(pruned.code(), StatusCode::kExpired);
  EXPECT_NE(pruned.message().find("pruned"), std::string::npos);
  // "b" is still disk-resident and reloads fine.
  EXPECT_TRUE(store.Get("b").ok());
}

TEST(GraphStoreSpillTest, GenerationCounterResumesPastRecoveredBindings) {
  const std::string dir = FreshSpillDir("gs_genresume");
  const GraphPtr graph = ChainGraph(100);
  uint64_t spilled_generation = 0;
  {
    SpillTier spill(dir, 0, "dataset");
    GraphStore store(graph->MemoryBytes(), &spill);
    ASSERT_TRUE(store.Put("a", graph).ok());
    ASSERT_TRUE(store.Put("b", ChainGraph(100)).ok());  // "a" → disk
    spilled_generation = store.Generation("a");
    ASSERT_GT(spilled_generation, 0u);
  }
  // "Restart": a fresh store over the same directory. The recovered
  // binding keeps its generation, and new uploads get strictly larger
  // ones — fingerprints can never collide across the restart.
  SpillTier spill(dir, 0, "dataset");
  GraphStore store(graph->MemoryBytes(), &spill);
  EXPECT_EQ(store.Generation("a"), spilled_generation);
  ASSERT_TRUE(store.Put("fresh", ChainGraph(50)).ok());
  EXPECT_GT(store.Generation("fresh"), spilled_generation);
  EXPECT_EQ(store.Get("a").value()->Serialize(), graph->Serialize());
}

TEST(GraphStoreTest, EvictionMarkersAreBounded) {
  const GraphPtr graph = ChainGraph(100);
  GraphStore store(graph->MemoryBytes());
  ASSERT_TRUE(store.Put("g0", graph).ok());
  // Evict far past the marker bound: old markers fall off FIFO and those
  // names answer NotFound again, so the marker set cannot grow forever.
  const size_t churn = GraphStore::kMaxEvictionMarkers + 10;
  for (size_t i = 1; i <= churn; ++i) {
    ASSERT_TRUE(store.Put("g" + std::to_string(i), ChainGraph(100)).ok());
  }
  EXPECT_EQ(store.Get("g0").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Get("g" + std::to_string(churn - 1)).status().code(),
            StatusCode::kExpired);
}

}  // namespace
}  // namespace cyclerank
