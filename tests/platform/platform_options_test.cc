#include "platform/platform_options.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(PlatformOptionsTest, EmptyStringYieldsDefaults) {
  const PlatformOptions parsed = PlatformOptions::FromString("").value();
  EXPECT_EQ(parsed, PlatformOptions{});
  EXPECT_EQ(parsed.graph_store_bytes, 0u);
  EXPECT_EQ(parsed.result_cache_bytes, ResultCache::kDefaultMaxBytes);
  EXPECT_EQ(parsed.max_retained_results, 0u);
  EXPECT_EQ(parsed.num_workers, 0u);
  EXPECT_EQ(parsed.default_threads, 0u);
  EXPECT_EQ(parsed.num_shards, 0u);
  EXPECT_EQ(parsed.uuid_seed, 0u);
  EXPECT_EQ(parsed.max_tasks_per_submission, 0u);
  EXPECT_EQ(parsed.spill_dir, "");
  EXPECT_EQ(parsed.graph_spill_bytes, 0u);
  EXPECT_EQ(parsed.result_spill_bytes, 0u);
  EXPECT_EQ(parsed.spill_write_behind_bytes, 32u << 20);
  EXPECT_TRUE(parsed.spill_compression);
}

TEST(PlatformOptionsTest, ParsesEveryKnob) {
  const PlatformOptions parsed =
      PlatformOptions::FromString(
          "graph_store_bytes=1000, result_cache_bytes=2000, "
          "max_retained_results=30, num_workers=4, default_threads=2, "
          "num_shards=3, uuid_seed=99, max_tasks_per_submission=16, "
          "spill_dir=/tmp/spill, graph_spill_bytes=4000, "
          "result_spill_bytes=5000, spill_write_behind_bytes=6000, "
          "spill_compression=false")
          .value();
  EXPECT_EQ(parsed.graph_store_bytes, 1000u);
  EXPECT_EQ(parsed.result_cache_bytes, 2000u);
  EXPECT_EQ(parsed.max_retained_results, 30u);
  EXPECT_EQ(parsed.num_workers, 4u);
  EXPECT_EQ(parsed.default_threads, 2u);
  EXPECT_EQ(parsed.num_shards, 3u);
  EXPECT_EQ(parsed.uuid_seed, 99u);
  EXPECT_EQ(parsed.max_tasks_per_submission, 16u);
  EXPECT_EQ(parsed.spill_dir, "/tmp/spill");
  EXPECT_EQ(parsed.graph_spill_bytes, 4000u);
  EXPECT_EQ(parsed.result_spill_bytes, 5000u);
  EXPECT_EQ(parsed.spill_write_behind_bytes, 6000u);
  EXPECT_FALSE(parsed.spill_compression);
}

TEST(PlatformOptionsTest, KeysAreCaseInsensitiveAndWhitespaceTolerant) {
  const PlatformOptions parsed =
      PlatformOptions::FromString("  NUM_WORKERS = 8 ;  Uuid_Seed=5  ")
          .value();
  EXPECT_EQ(parsed.num_workers, 8u);
  EXPECT_EQ(parsed.uuid_seed, 5u);
}

TEST(PlatformOptionsTest, ByteKnobsAcceptBinarySuffixes) {
  EXPECT_EQ(PlatformOptions::FromString("graph_store_bytes=64m")
                .value()
                .graph_store_bytes,
            64u << 20);
  EXPECT_EQ(PlatformOptions::FromString("graph_store_bytes=64MiB")
                .value()
                .graph_store_bytes,
            64u << 20);
  EXPECT_EQ(PlatformOptions::FromString("result_cache_bytes=2k")
                .value()
                .result_cache_bytes,
            2048u);
  EXPECT_EQ(PlatformOptions::FromString("result_cache_bytes=1gb")
                .value()
                .result_cache_bytes,
            1u << 30);
}

TEST(PlatformOptionsTest, RoundTripsThroughToString) {
  PlatformOptions options;
  options.graph_store_bytes = 123456;
  options.result_cache_bytes = 0;
  options.max_retained_results = 77;
  options.num_workers = 3;
  options.default_threads = 5;
  options.num_shards = 4;
  options.uuid_seed = 42;
  options.max_tasks_per_submission = 9;
  options.spill_dir = "/var/tmp/cyclerank-spill";
  options.graph_spill_bytes = 1u << 20;
  options.result_spill_bytes = 2u << 20;
  options.spill_write_behind_bytes = 0;  // synchronous spilling
  options.spill_compression = false;
  const PlatformOptions reparsed =
      PlatformOptions::FromString(options.ToString()).value();
  EXPECT_EQ(reparsed, options);
  // Defaults round-trip too.
  EXPECT_EQ(PlatformOptions::FromString(PlatformOptions{}.ToString()).value(),
            PlatformOptions{});
  // The full uint64 seed range round-trips (a randomly drawn seed can
  // exceed int64's range).
  options.uuid_seed = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(PlatformOptions::FromString(options.ToString()).value(), options);
}

TEST(PlatformOptionsTest, UnknownKeysRejected) {
  const auto result = PlatformOptions::FromString("graph_store_byte=1g");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("graph_store_byte"),
            std::string::npos);
  EXPECT_FALSE(PlatformOptions::FromString("threads=4").ok());
}

TEST(PlatformOptionsTest, MalformedValuesRejected) {
  EXPECT_FALSE(PlatformOptions::FromString("num_workers=-1").ok());
  EXPECT_FALSE(PlatformOptions::FromString("num_workers=abc").ok());
  EXPECT_FALSE(PlatformOptions::FromString("graph_store_bytes=10q").ok());
  EXPECT_FALSE(PlatformOptions::FromString("graph_store_bytes=m").ok());
  EXPECT_FALSE(PlatformOptions::FromString("uuid_seed=-3").ok());
  EXPECT_FALSE(PlatformOptions::FromString("default_threads=4294967296").ok());
  // Shard counts share threads' parse rules plus the 2^16 partition cap.
  EXPECT_FALSE(PlatformOptions::FromString("num_shards=-1").ok());
  EXPECT_FALSE(PlatformOptions::FromString("num_shards=abc").ok());
  EXPECT_FALSE(PlatformOptions::FromString("num_shards=65536").ok());
  EXPECT_EQ(PlatformOptions::FromString("num_shards=65535").value().num_shards,
            65535u);
  EXPECT_FALSE(PlatformOptions::FromString("num_workers").ok());
}

TEST(PlatformOptionsTest, DuplicateKeysRejected) {
  EXPECT_FALSE(
      PlatformOptions::FromString("num_workers=2, num_workers=3").ok());
}

TEST(PlatformOptionsTest, SpillKnobsParse) {
  // Byte suffixes work on the spill budgets like on every byte knob.
  EXPECT_EQ(PlatformOptions::FromString("graph_spill_bytes=64m")
                .value()
                .graph_spill_bytes,
            64u << 20);
  EXPECT_EQ(PlatformOptions::FromString("result_spill_bytes=2k")
                .value()
                .result_spill_bytes,
            2048u);
  EXPECT_FALSE(PlatformOptions::FromString("graph_spill_bytes=abc").ok());
  // An explicitly empty spill_dir parses to the disabled default.
  EXPECT_EQ(PlatformOptions::FromString("spill_dir=").value().spill_dir, "");
}

TEST(PlatformOptionsTest, LsmKnobsParse) {
  // The write-behind bound takes byte suffixes; 0 means synchronous.
  EXPECT_EQ(PlatformOptions::FromString("spill_write_behind_bytes=8m")
                .value()
                .spill_write_behind_bytes,
            8u << 20);
  EXPECT_EQ(PlatformOptions::FromString("spill_write_behind_bytes=0")
                .value()
                .spill_write_behind_bytes,
            0u);
  // Compression accepts the usual boolean spellings, case-insensitively.
  EXPECT_TRUE(PlatformOptions::FromString("spill_compression=TRUE")
                  .value()
                  .spill_compression);
  EXPECT_TRUE(
      PlatformOptions::FromString("spill_compression=1").value().spill_compression);
  EXPECT_FALSE(PlatformOptions::FromString("spill_compression=false")
                   .value()
                   .spill_compression);
  EXPECT_FALSE(
      PlatformOptions::FromString("spill_compression=0").value().spill_compression);
  const auto bad = PlatformOptions::FromString("spill_compression=maybe");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("spill_compression"),
            std::string::npos);
  EXPECT_FALSE(PlatformOptions::FromString("spill_write_behind_bytes=-1").ok());
}

TEST(PlatformOptionsTest, FaultHandlingKnobsParse) {
  // The PR-8 retry/breaker/overload knobs: plain integers, with the
  // defaults documented in the header.
  const PlatformOptions defaults = PlatformOptions::FromString("").value();
  EXPECT_EQ(defaults.spill_retry_limit, 3u);
  EXPECT_EQ(defaults.spill_retry_backoff_ms, 1u);
  EXPECT_EQ(defaults.spill_breaker_probe_ms, 1000u);
  EXPECT_EQ(defaults.admission_queue_limit, 0u);
  EXPECT_EQ(defaults.default_deadline_ms, 0u);

  const PlatformOptions parsed =
      PlatformOptions::FromString(
          "spill_retry_limit=5, spill_retry_backoff_ms=2, "
          "spill_breaker_probe_ms=250, admission_queue_limit=64, "
          "default_deadline_ms=1500")
          .value();
  EXPECT_EQ(parsed.spill_retry_limit, 5u);
  EXPECT_EQ(parsed.spill_retry_backoff_ms, 2u);
  EXPECT_EQ(parsed.spill_breaker_probe_ms, 250u);
  EXPECT_EQ(parsed.admission_queue_limit, 64u);
  EXPECT_EQ(parsed.default_deadline_ms, 1500u);

  // Round trip through the canonical text form, defaults included.
  EXPECT_EQ(PlatformOptions::FromString(parsed.ToString()).value(), parsed);

  EXPECT_FALSE(PlatformOptions::FromString("spill_retry_limit=-1").ok());
  EXPECT_FALSE(PlatformOptions::FromString("default_deadline_ms=soon").ok());
  EXPECT_FALSE(PlatformOptions::FromString("admission_queue_limit=").ok());
}

TEST(PlatformOptionsTest, ResolvedNumWorkers) {
  PlatformOptions options;
  options.num_workers = 7;
  EXPECT_EQ(options.ResolvedNumWorkers(), 7u);
  options.num_workers = 0;
  EXPECT_GE(options.ResolvedNumWorkers(), 1u);
}

}  // namespace
}  // namespace cyclerank
