#include "platform/datastore.h"

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "platform/params.h"
#include "platform/result_io.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

GraphPtr SmallGraph() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  return builder.BuildShared().value();
}

TEST(DatastoreTest, PutAndGetDataset) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("mine", SmallGraph()).ok());
  const GraphPtr g = store.GetDataset("mine").value();
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(store.UploadedDatasets(), (std::vector<std::string>{"mine"}));
}

TEST(DatastoreTest, MissingDatasetNotFound) {
  Datastore store(nullptr);
  EXPECT_EQ(store.GetDataset("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatastoreTest, FallsBackToCatalog) {
  Datastore store;  // backed by the built-in catalog
  EXPECT_TRUE(store.GetDataset("fakenews-en").ok());
}

TEST(DatastoreTest, UploadedNameMayNotShadowCatalog) {
  Datastore store;
  EXPECT_EQ(store.PutDataset("fakenews-en", SmallGraph()).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatastoreTest, DuplicateUploadRejected) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("a", SmallGraph()).ok());
  EXPECT_EQ(store.PutDataset("a", SmallGraph()).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatastoreTest, RejectsBadInput) {
  Datastore store(nullptr);
  EXPECT_EQ(store.PutDataset("", SmallGraph()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.PutDataset("x", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatastoreTest, UploadDatasetParsesContent) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.UploadDataset("csv", "a,b\nb,a\n").ok());
  const GraphPtr g = store.GetDataset("csv").value();
  EXPECT_EQ(g->num_edges(), 2u);
  ASSERT_TRUE(store.UploadDataset("pajek", "*Vertices 2\n*Arcs\n1 2\n").ok());
  EXPECT_EQ(store.GetDataset("pajek").value()->num_edges(), 1u);
  ASSERT_TRUE(store.UploadDataset("asd", "2 1\n0 1\n").ok());
  EXPECT_EQ(store.GetDataset("asd").value()->num_nodes(), 2u);
}

TEST(DatastoreTest, UploadRejectsGarbage) {
  Datastore store(nullptr);
  EXPECT_FALSE(store.UploadDataset("bad", "not a graph at all").ok());
}

TEST(DatastoreTest, ResultsRoundTrip) {
  Datastore store(nullptr);
  TaskResult result;
  result.task_id = "t1";
  result.spec.dataset = "d";
  result.spec.algorithm = "pagerank";
  result.ranking = {{3, 0.9}, {1, 0.1}};
  result.seconds = 1.5;
  store.PutResult(result);
  ASSERT_TRUE(store.HasResult("t1"));
  const TaskResult loaded = store.GetResult("t1").value();
  EXPECT_EQ(loaded.ranking.size(), 2u);
  EXPECT_EQ(loaded.ranking[0].node, 3u);
  EXPECT_DOUBLE_EQ(loaded.seconds, 1.5);
}

TEST(DatastoreTest, MissingResultNotFound) {
  Datastore store(nullptr);
  EXPECT_FALSE(store.HasResult("zz"));
  EXPECT_EQ(store.GetResult("zz").status().code(), StatusCode::kNotFound);
}

TEST(DatastoreTest, ResultOverwriteKeepsLatest) {
  Datastore store(nullptr);
  TaskResult first;
  first.task_id = "t";
  first.seconds = 1.0;
  store.PutResult(first);
  TaskResult second;
  second.task_id = "t";
  second.seconds = 2.0;
  store.PutResult(second);
  EXPECT_DOUBLE_EQ(store.GetResult("t").value().seconds, 2.0);
}

TEST(DatastoreTest, LogsAppendInOrder) {
  Datastore store(nullptr);
  store.AppendLog("t", "first");
  store.AppendLog("t", "second");
  store.AppendLog("other", "unrelated");
  EXPECT_EQ(store.GetLog("t"), (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(store.GetLog("other").size(), 1u);
  EXPECT_TRUE(store.GetLog("none").empty());
}

TEST(DatastoreTest, GraphBudgetEvictsLeastRecentlyQueried) {
  const GraphPtr graph = ChainGraph(100);
  Datastore store(nullptr, GraphBudget(2 * graph->MemoryBytes()));
  ASSERT_TRUE(store.PutDataset("a", graph).ok());
  ASSERT_TRUE(store.PutDataset("b", ChainGraph(100)).ok());
  // "a" is older but queried more recently — "b" is the eviction victim.
  ASSERT_TRUE(store.GetDataset("a").ok());
  ASSERT_TRUE(store.PutDataset("c", ChainGraph(100)).ok());
  EXPECT_TRUE(store.GetDataset("a").ok());
  EXPECT_EQ(store.GetDataset("b").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.GetDataset("c").ok());
  EXPECT_EQ(store.UploadedDatasets(), (std::vector<std::string>{"a", "c"}));
  // Never-uploaded names keep reporting NotFound, not Expired.
  EXPECT_EQ(store.GetDataset("never").status().code(), StatusCode::kNotFound);
}

TEST(DatastoreTest, OversizedGraphRejectedUpFrontWithBytes) {
  const GraphPtr big = ChainGraph(500);
  Datastore store(nullptr, GraphBudget(big->MemoryBytes() / 2));
  const Status status = store.PutDataset("big", big);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(std::to_string(big->MemoryBytes())),
            std::string::npos);
}

TEST(DatastoreTest, UploadDatasetRejectsOversizedContentBeforeParsing) {
  Datastore store(nullptr, GraphBudget(64));
  // 65+ bytes of edge list: rejected on the raw byte count, before any
  // parse work — the message states both figures.
  std::string content;
  for (int i = 0; content.size() <= 64; ++i) {
    content += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  const Status status = store.UploadDataset("big", content);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(std::to_string(content.size())),
            std::string::npos);
  EXPECT_NE(status.message().find("64"), std::string::npos);
  // Unbounded stores still accept anything parseable.
  Datastore unbounded(nullptr);
  EXPECT_TRUE(unbounded.UploadDataset("big", content).ok());
}

TEST(DatastoreTest, EvictionNeverFreesAPinnedSnapshot) {
  const GraphPtr graph = ChainGraph(100);
  Datastore store(nullptr, GraphBudget(graph->MemoryBytes()));
  ASSERT_TRUE(store.PutDataset("hot", graph).ok());
  // An executor pins the snapshot (GetDataset at task start)…
  const GraphPtr pinned = store.GetDataset("hot").value();
  // …then an upload evicts the dataset out of the store.
  ASSERT_TRUE(store.PutDataset("filler", ChainGraph(100)).ok());
  ASSERT_EQ(store.GetDataset("hot").status().code(), StatusCode::kExpired);
  // The pinned snapshot still reads intact.
  EXPECT_EQ(pinned->num_nodes(), 100u);
  EXPECT_EQ(pinned->num_edges(), 99u);
  // Re-uploading revives the name for new tasks.
  ASSERT_TRUE(store.PutDataset("hot", ChainGraph(100)).ok());
  EXPECT_TRUE(store.GetDataset("hot").ok());
}

TEST(DatastoreTest, GraphStoreStatsExposed) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("a", ChainGraph(10)).ok());
  (void)store.GetDataset("a");
  const GraphStoreStats stats = store.graph_store().stats();
  EXPECT_EQ(stats.uploads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TaskResult ResultFor(const std::string& id) {
  TaskResult result;
  result.task_id = id;
  return result;
}

TEST(DatastoreTest, RetentionEvictsOldestResultsFifo) {
  Datastore store(nullptr, RetainResults(3));
  for (int i = 0; i < 5; ++i) {
    const std::string id = "t" + std::to_string(i);
    store.AppendLog(id, "ran");
    store.PutResult(ResultFor(id));
  }
  EXPECT_EQ(store.NumStoredResults(), 3u);
  // t0, t1 evicted; t2..t4 live.
  EXPECT_EQ(store.GetResult("t0").status().code(), StatusCode::kExpired);
  EXPECT_EQ(store.GetResult("t1").status().code(), StatusCode::kExpired);
  EXPECT_FALSE(store.HasResult("t0"));
  for (const char* id : {"t2", "t3", "t4"}) {
    EXPECT_TRUE(store.HasResult(id)) << id;
  }
  // Logs of evicted tasks are dropped with the result; live logs stay.
  EXPECT_TRUE(store.GetLog("t0").empty());
  EXPECT_EQ(store.GetLog("t4"), (std::vector<std::string>{"ran"}));
  // Never-stored tasks still report NotFound, not Expired.
  EXPECT_EQ(store.GetResult("never").status().code(), StatusCode::kNotFound);
}

TEST(DatastoreTest, RetentionZeroMeansUnlimited) {
  Datastore store(nullptr, RetainResults(0));
  for (int i = 0; i < 100; ++i) {
    store.PutResult(ResultFor("t" + std::to_string(i)));
  }
  EXPECT_EQ(store.NumStoredResults(), 100u);
  EXPECT_TRUE(store.HasResult("t0"));
}

TEST(DatastoreTest, RetryOverwriteKeepsRetentionSlot) {
  Datastore store(nullptr, RetainResults(2));
  store.PutResult(ResultFor("a"));
  store.PutResult(ResultFor("b"));
  // Overwriting "a" must not count as a new insertion (or "b" would be
  // unfairly evicted ahead of it later).
  TaskResult retry = ResultFor("a");
  retry.seconds = 9.0;
  store.PutResult(retry);
  EXPECT_EQ(store.NumStoredResults(), 2u);
  EXPECT_DOUBLE_EQ(store.GetResult("a").value().seconds, 9.0);
  store.PutResult(ResultFor("c"));  // evicts "a", the oldest insertion
  EXPECT_EQ(store.GetResult("a").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(store.HasResult("b"));
  EXPECT_TRUE(store.HasResult("c"));
}

TEST(DatastoreTest, ReStoringAnEvictedResultRevivesIt) {
  Datastore store(nullptr, RetainResults(1));
  store.PutResult(ResultFor("a"));
  store.PutResult(ResultFor("b"));  // evicts "a"
  EXPECT_EQ(store.GetResult("a").status().code(), StatusCode::kExpired);
  store.PutResult(ResultFor("a"));  // re-run stored again, evicts "b"
  EXPECT_TRUE(store.HasResult("a"));
  EXPECT_EQ(store.GetResult("b").status().code(), StatusCode::kExpired);
}

TEST(DatastoreTest, EvictionMarkersAreBoundedToo) {
  Datastore store(nullptr, RetainResults(2));
  for (int i = 0; i < 10; ++i) {
    store.PutResult(ResultFor("t" + std::to_string(i)));
  }
  // Markers are FIFO-bounded by the same knob: only the two most recent
  // evictions (t6, t7) still answer Expired; older ones fell off and are
  // indistinguishable from never-stored.
  EXPECT_EQ(store.GetResult("t7").status().code(), StatusCode::kExpired);
  EXPECT_EQ(store.GetResult("t6").status().code(), StatusCode::kExpired);
  EXPECT_EQ(store.GetResult("t0").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.HasResult("t8"));
  EXPECT_TRUE(store.HasResult("t9"));
}

// ---- Disk spill tier behind the facade ------------------------------------

/// Options for a spill-enabled datastore: memory holds one ~100-node chain
/// and one result; evictions demote to `dir`.
PlatformOptions SpillOptions(const std::string& dir) {
  PlatformOptions options;
  options.graph_store_bytes = ChainGraph(100)->MemoryBytes();
  options.max_retained_results = 1;
  options.spill_dir = dir;
  return options;
}

TaskResult RichResultFor(const std::string& id) {
  TaskResult result;
  result.task_id = id;
  result.spec.dataset = "d";
  result.spec.algorithm = "pagerank";
  result.spec.params.Set("alpha", "0.85");
  result.ranking = {{3, 0.9}, {1, 0.1 + 0.2}};
  result.seconds = 1.0 / 3.0;
  return result;
}

TEST(DatastoreSpillTest, EvictedResultReloadsFromDisk) {
  Datastore store(nullptr, SpillOptions(FreshSpillDir("ds_result_reload")));
  store.AppendLog("r1", "ran");
  store.PutResult(RichResultFor("r1"));
  store.PutResult(RichResultFor("r2"));  // retention=1: r1 → disk
  EXPECT_FALSE(store.HasResult("r1"));
  store.Flush();  // demotion is write-behind: barrier before stats
  ASSERT_EQ(store.result_spill()->stats().spills, 1u);
  // The reload is transparent and bit-identical...
  const TaskResult reloaded = store.GetResult("r1").value();
  EXPECT_EQ(SerializeTaskResult(reloaded),
            SerializeTaskResult(RichResultFor("r1")));
  // ...and re-admits r1 to the memory tier, demoting r2 in its place.
  EXPECT_TRUE(store.HasResult("r1"));
  EXPECT_FALSE(store.HasResult("r2"));
  EXPECT_TRUE(store.GetResult("r2").ok());  // reloads right back
  // Logs followed the *memory* eviction and stay gone (documented).
  EXPECT_TRUE(store.GetLog("r1").empty());
}

TEST(DatastoreSpillTest, ExpiredMessagesDistinguishPrunedFromNeverStored) {
  PlatformOptions options = SpillOptions(FreshSpillDir("ds_pruned"));
  // A result spill budget too small for any result file: every demotion
  // is rejected → marked pruned.
  options.result_spill_bytes = 16;
  Datastore store(nullptr, options);
  store.PutResult(RichResultFor("r1"));
  store.PutResult(RichResultFor("r2"));  // r1 evicted, cannot spill
  // Write-behind keeps the victim readable until the flush thread rejects
  // it as oversize; the barrier makes the pruning observable.
  store.Flush();
  const Status pruned = store.GetResult("r1").status();
  EXPECT_EQ(pruned.code(), StatusCode::kExpired);
  EXPECT_NE(pruned.message().find("pruned"), std::string::npos);
  // A task that never existed is a NotFound, never an Expired: operators
  // can tell budget pressure from typos.
  EXPECT_EQ(store.GetResult("typo").status().code(), StatusCode::kNotFound);
}

TEST(DatastoreSpillTest, DatasetSpillKeepsCacheGenerationAcrossDemotion) {
  Datastore store(nullptr, SpillOptions(FreshSpillDir("ds_gen")));
  ASSERT_TRUE(store.PutDataset("a", ChainGraph(100)).ok());
  const auto gen_before = store.DatasetCacheGeneration("a");
  ASSERT_TRUE(gen_before.has_value());
  ASSERT_TRUE(store.PutDataset("b", ChainGraph(100)).ok());  // "a" → disk
  // Demotion is not a re-binding: the generation — and with it every
  // cached result's fingerprint — survives, both while the dataset sits
  // on disk and after it reloads.
  EXPECT_EQ(store.DatasetCacheGeneration("a"), gen_before);
  ASSERT_TRUE(store.GetDataset("a").ok());
  EXPECT_EQ(store.DatasetCacheGeneration("a"), gen_before);
}

TEST(DatastoreSpillTest, RestartRecoversSpilledDatasetsAndResults) {
  const std::string dir = FreshSpillDir("ds_restart");
  const GraphPtr original = ChainGraph(100);
  std::string graph_bytes_before;
  std::string result_bytes_before;
  uint64_t gen_before = 0;
  {
    Datastore store(nullptr, SpillOptions(dir));
    ASSERT_TRUE(store.PutDataset("a", original).ok());
    ASSERT_TRUE(store.PutDataset("b", ChainGraph(100)).ok());  // "a" → disk
    gen_before = *store.DatasetCacheGeneration("a");
    graph_bytes_before = original->Serialize();
    store.PutResult(RichResultFor("r1"));
    store.PutResult(RichResultFor("r2"));  // r1 → disk
    result_bytes_before = SerializeTaskResult(RichResultFor("r1"));
  }  // process "dies"; only the spill directory survives
  Datastore store(nullptr, SpillOptions(dir));
  EXPECT_GE(store.dataset_spill()->stats().recovered_files, 1u);
  EXPECT_GE(store.result_spill()->stats().recovered_files, 1u);
  // Spilled entries reload bit-identically after the restart.
  const GraphPtr graph = store.GetDataset("a").value();
  EXPECT_EQ(graph->Serialize(), graph_bytes_before);
  EXPECT_EQ(graph->MemoryBytes(), original->MemoryBytes());
  const TaskResult result = store.GetResult("r1").value();
  EXPECT_EQ(SerializeTaskResult(result), result_bytes_before);
  // The recovered binding keeps its generation; a *new* binding gets a
  // strictly larger one, so pre-restart fingerprints can never be served
  // for post-restart uploads.
  EXPECT_EQ(store.DatasetCacheGeneration("a"), gen_before);
  ASSERT_TRUE(store.PutDataset("fresh", ChainGraph(50)).ok());
  EXPECT_GT(*store.DatasetCacheGeneration("fresh"), gen_before);
}

TEST(DatastoreSpillTest, CorruptSpillFileDegradesToExpiredNotACrash) {
  const std::string dir = FreshSpillDir("ds_corrupt");
  {
    Datastore store(nullptr, SpillOptions(dir));
    ASSERT_TRUE(store.PutDataset("a", ChainGraph(100)).ok());
    ASSERT_TRUE(store.PutDataset("b", ChainGraph(100)).ok());  // "a" → disk
  }
  // Truncate every dataset spill file, as a crashed writer would.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.path().extension() == ".spill") {
      std::filesystem::resize_file(entry.path(), 10);
    }
  }
  // Recovery skips the torn file with a warning instead of crashing, and
  // the dataset is simply gone (its in-memory expiry marker died with the
  // old process, so it reports NotFound — indistinguishable from never
  // uploaded, which is all a fresh process can know).
  Datastore store(nullptr, SpillOptions(dir));
  EXPECT_GE(store.dataset_spill()->stats().skipped_corrupt_files, 1u);
  EXPECT_EQ(store.dataset_spill()->stats().recovered_files, 0u);
  EXPECT_FALSE(store.GetDataset("a").ok());
}

TEST(DatastoreSpillTest, CacheEvictionDemotesToDiskAndRebindDropsBothTiers) {
  PlatformOptions options = SpillOptions(FreshSpillDir("ds_cache_spill"));
  // Keys shaped like real fingerprints so the PutDataset re-binding path
  // (ErasePrefix over the dataset prefix) matches them.
  const std::string key_a = DatasetFingerprintPrefix("d") + "fp-a";
  const std::string key_b = DatasetFingerprintPrefix("d") + "fp-b";
  const size_t one = ResultCache::EstimateBytes(key_a, RichResultFor("r"));
  options.result_cache_bytes = one + one / 2;  // room for exactly one entry
  Datastore store(nullptr, options);
  ResultCache& cache = store.result_cache();

  cache.Put(key_a, RichResultFor("cached-a"));
  cache.Put(key_b, RichResultFor("cached-b"));  // demotes key_a to disk
  store.Flush();
  EXPECT_EQ(store.cache_spill()->stats().spills, 1u);
  // The evicted fingerprint is still a cache *hit* — transparently reloaded
  // from the disk tier instead of forcing a kernel re-run — and
  // bit-identical to what was cached.
  const auto reloaded = cache.Get(key_a);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(SerializeTaskResult(*reloaded),
            SerializeTaskResult(RichResultFor("cached-a")));
  EXPECT_EQ(cache.stats().disk_reloads, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);

  // Re-binding the dataset name must invalidate its fingerprints in *both*
  // tiers — a disk copy serving rankings of the old graph would be a
  // correctness bug, not a cache miss.
  ASSERT_TRUE(store.PutDataset("d", ChainGraph(10)).ok());
  EXPECT_FALSE(cache.Get(key_a).has_value());
  EXPECT_FALSE(cache.Get(key_b).has_value());
  EXPECT_FALSE(store.cache_spill()->Contains(key_a));
  EXPECT_FALSE(store.cache_spill()->Contains(key_b));
}

}  // namespace
}  // namespace cyclerank
