// Failure injection and concurrency stress for the platform layer: the
// paper's architecture claims isolation between tasks ("each component is
// containerized to provide isolation", §III) — in this in-process library
// that translates to: one failing task never corrupts its comparison, and
// every component tolerates concurrent clients.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "platform/gateway.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

/// Algorithm that fails on demand: `params: fail=1` -> Internal error;
/// `params: crashy_seed` odd -> OutOfRange. Used to inject failures at the
/// executor level.
class FlakyAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "flaky"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    ++invocations_;
    if (request.seed % 2 == 1) {
      return Status::Internal("flaky: injected failure (odd seed)");
    }
    std::vector<double> scores(g.num_nodes(), 1.0);
    RankingOptions options;
    options.drop_zeros = false;
    return ScoresToRankedList(scores, options);
  }
  static std::atomic<int> invocations_;
};

std::atomic<int> FlakyAlgorithm::invocations_{0};

/// Deterministic algorithm that counts kernel executions — the probe for
/// the "repeated queries execute zero kernel work" guarantees of the
/// result-cache + single-flight layer.
class CountingAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "counting"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    runs_.fetch_add(1);
    std::vector<double> scores(g.num_nodes());
    for (size_t i = 0; i < scores.size(); ++i) {
      scores[i] = request.alpha / (1.0 + static_cast<double>(i));
    }
    RankingOptions options;
    options.drop_zeros = false;
    return ScoresToRankedList(scores, options);
  }
  static std::atomic<int> runs_;
};

std::atomic<int> CountingAlgorithm::runs_{0};

GraphPtr TinyGraph() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  return builder.BuildShared().value();
}

TEST(FailureInjectionTest, FailedTasksDoNotPoisonTheComparison) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<FlakyAlgorithm>()).ok());
  ASSERT_TRUE(registry.Register(MakeAlgorithm(AlgorithmKind::kPageRank)).ok());
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  ApiGateway gateway(&store, &registry,
      PlatformOptions::WithWorkers(2, 3));

  TaskBuilder builder;
  for (int i = 0; i < 10; ++i) {
    // Odd seeds fail, even seeds succeed.
    ASSERT_TRUE(
        builder.Add("tiny", "flaky", "seed=" + std::to_string(i)).ok());
  }
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
  const ComparisonStatus status = gateway.GetStatus(id).value();
  EXPECT_EQ(status.completed, 5u);
  EXPECT_EQ(status.failed, 5u);
  EXPECT_TRUE(status.done);
  // Every task has a stored result carrying its own status.
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 10u);
  size_t failed = 0;
  for (const TaskResult& result : results) {
    if (!result.status.ok()) {
      ++failed;
      EXPECT_EQ(result.status.code(), StatusCode::kInternal);
      EXPECT_TRUE(result.ranking.empty());
    }
  }
  EXPECT_EQ(failed, 5u);
}

TEST(FailureInjectionTest, FailureLogsAreRecorded) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<FlakyAlgorithm>()).ok());
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  ApiGateway gateway(&store, &registry,
      PlatformOptions::WithWorkers(1, 4));
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("tiny", "flaky", "seed=1").ok());
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 30.0));
  const auto log = store.GetLog(id + "/0");
  ASSERT_FALSE(log.empty());
  bool found = false;
  for (const std::string& line : log) {
    if (line.find("injected failure") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StressTest, ConcurrentSubmittersGetIsolatedComparisons) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4, 9));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&gateway, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TaskBuilder builder;
        (void)builder.Add("tiny", "pagerank", "alpha=0.85");
        (void)builder.Add("tiny", "cyclerank", "source=0, k=3");
        auto id = gateway.SubmitQuerySet(builder.Build());
        if (id.ok()) ids[t].push_back(std::move(id).value());
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();

  std::set<std::string> unique;
  for (const auto& batch : ids) {
    ASSERT_EQ(batch.size(), static_cast<size_t>(kPerThread));
    for (const std::string& id : batch) {
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
      ASSERT_TRUE(*gateway.WaitForCompletion(id, 120.0));
      const ComparisonStatus status = gateway.GetStatus(id).value();
      EXPECT_EQ(status.completed, 2u) << id;
    }
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(StressTest, ConcurrentDatastoreUploadsAndReads) {
  Datastore store(nullptr);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::atomic<int> upload_failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &upload_failures, t] {
      for (int i = 0; i < 20; ++i) {
        const std::string name =
            "g-" + std::to_string(t) + "-" + std::to_string(i);
        if (!store.PutDataset(name, TinyGraph()).ok()) ++upload_failures;
        // Interleave reads of everything uploaded so far.
        (void)store.GetDataset(name);
        store.AppendLog(name, "uploaded");
      }
    });
  }
  for (std::thread& thread : workers) thread.join();
  EXPECT_EQ(upload_failures.load(), 0);
  EXPECT_EQ(store.UploadedDatasets().size(), 160u);
}

TEST(StressTest, ConcurrentRegistryLookupsDuringRegistration) {
  AlgorithmRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load()) {
      (void)registry.Find("pagerank");
      (void)registry.Names();
    }
  });
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    ASSERT_TRUE(registry.Register(MakeAlgorithm(kind)).ok());
  }
  stop = true;
  reader.join();
  EXPECT_TRUE(registry.Find("pagerank").ok());
}

TEST(StressTest, SingleFlightCoalescesIdenticalConcurrentSubmissions) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<CountingAlgorithm>()).ok());
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  ApiGateway gateway(&store, &registry,
      PlatformOptions::WithWorkers(4, 11));
  CountingAlgorithm::runs_ = 0;

  // Hammer the gateway with the same task from many threads at once: every
  // submission must complete with the same ranking, and the kernel must run
  // exactly once — later submissions coalesce with the in-flight leader or
  // hit the cache it populated.
  constexpr int kThreads = 8;
  std::vector<std::string> ids(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&gateway, &ids, t] {
      TaskBuilder builder;
      (void)builder.Add("tiny", "counting", "alpha=0.5");
      auto id = gateway.SubmitQuerySet(builder.Build());
      if (id.ok()) ids[t] = std::move(id).value();
    });
  }
  for (std::thread& thread : submitters) thread.join();

  RankedList reference;
  for (const std::string& id : ids) {
    ASSERT_FALSE(id.empty());
    ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
    const ComparisonStatus status = gateway.GetStatus(id).value();
    EXPECT_EQ(status.completed, 1u) << id;
    const auto results = gateway.GetResults(id).value();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].status.ok());
    if (reference.empty()) reference = results[0].ranking;
    EXPECT_EQ(results[0].ranking, reference) << id;
  }
  EXPECT_EQ(CountingAlgorithm::runs_.load(), 1);
}

TEST(StressTest, ResubmissionExecutesZeroKernelWork) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<CountingAlgorithm>()).ok());
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  ApiGateway gateway(&store, &registry,
      PlatformOptions::WithWorkers(2, 12));
  CountingAlgorithm::runs_ = 0;

  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("tiny", "counting", "alpha=0.1").ok());
  ASSERT_TRUE(builder.Add("tiny", "counting", "alpha=0.2").ok());
  ASSERT_TRUE(builder.Add("tiny", "counting", "alpha=0.3").ok());

  const std::string first = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(first, 60.0));
  EXPECT_EQ(CountingAlgorithm::runs_.load(), 3);
  const auto first_results = gateway.GetResults(first).value();

  const std::string second = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(second, 60.0));
  // The entire resubmission was served from the cache: zero kernel work,
  // bit-identical rankings.
  EXPECT_EQ(CountingAlgorithm::runs_.load(), 3);
  const auto second_results = gateway.GetResults(second).value();
  ASSERT_EQ(second_results.size(), first_results.size());
  for (size_t i = 0; i < second_results.size(); ++i) {
    EXPECT_TRUE(second_results[i].status.ok());
    EXPECT_EQ(second_results[i].ranking, first_results[i].ranking);
  }
}

TEST(StressTest, CancelledLeaderDoesNotDragCoalescedFollowersDown) {
  Datastore store(nullptr);
  ASSERT_TRUE(store.PutDataset("tiny", TinyGraph()).ok());
  // One worker: comparison A's first task occupies it while A's second task
  // and comparison C's identical task queue up and coalesce.
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(1, 13));

  TaskBuilder a_builder;
  ASSERT_TRUE(
      a_builder.Add("tiny", "ppr_montecarlo", "source=0, walks=2000000").ok());
  ASSERT_TRUE(a_builder.Add("tiny", "pagerank", "alpha=0.7").ok());
  const std::string a = gateway.SubmitQuerySet(a_builder.Build()).value();

  TaskBuilder c_builder;
  ASSERT_TRUE(c_builder.Add("tiny", "pagerank", "alpha=0.7").ok());
  const std::string c = gateway.SubmitQuerySet(c_builder.Build()).value();

  // Cancel A. If A's pagerank task was the single-flight leader and gets
  // cancelled, C's coalesced task must be promoted and still complete —
  // cancellation belongs to A's requester, not to the shared computation.
  ASSERT_TRUE(gateway.Cancel(a).ok());
  ASSERT_TRUE(*gateway.WaitForCompletion(a, 60.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(c, 60.0));
  const ComparisonStatus c_status = gateway.GetStatus(c).value();
  EXPECT_EQ(c_status.completed, 1u);
  const auto c_results = gateway.GetResults(c).value();
  ASSERT_EQ(c_results.size(), 1u);
  EXPECT_TRUE(c_results[0].status.ok());
  EXPECT_FALSE(c_results[0].ranking.empty());
}

TEST(StressTest, PinnedSnapshotSurvivesEvictionBitIdentical) {
  const GraphPtr hot = ChainGraph(200);
  const std::string params = "source=0, walks=2000000";

  // Baseline: the same query against an unbounded store.
  RankedList baseline;
  {
    Datastore store(nullptr);
    ASSERT_TRUE(store.PutDataset("hot", hot).ok());
    ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
                       PlatformOptions::WithWorkers(1, 23));
    TaskBuilder builder;
    ASSERT_TRUE(builder.Add("hot", "ppr_montecarlo", params).ok());
    const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
    ASSERT_TRUE(*gateway.WaitForCompletion(id, 120.0));
    const auto results = gateway.GetResults(id).value();
    ASSERT_TRUE(results[0].status.ok());
    baseline = results[0].ranking;
  }

  // Bounded store: the budget holds exactly one graph of this size.
  PlatformOptions options;
  options.graph_store_bytes = hot->MemoryBytes();
  options.result_cache_bytes = 0;  // force the kernel to actually run
  options.num_workers = 1;
  options.uuid_seed = 24;
  Datastore store(nullptr, options);
  ASSERT_TRUE(store.PutDataset("hot", hot).ok());
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("hot", "ppr_montecarlo", params).ok());
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();

  // Wait until the executor pinned the snapshot (kRunning implies the
  // dataset fetch already happened).
  const std::string task = id + "/0";
  while (true) {
    const TaskState state = gateway.status_service().GetState(task).value();
    if (state == TaskState::kRunning || IsTerminal(state)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Evict "hot" out from under the (likely still running) query.
  ASSERT_TRUE(store.PutDataset("filler", ChainGraph(200)).ok());
  ASSERT_EQ(store.GetDataset("hot").status().code(), StatusCode::kExpired);

  // The in-flight query completes against its pinned snapshot with results
  // bit-identical to the eviction-free run.
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 120.0));
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].ranking, baseline);
}

TEST(StressTest, DatasetEvictionChurnUnderConcurrentQueries) {
  // Uploads and queries race on a store whose budget holds ~3 graphs, so
  // eviction churns constantly while kernels run. Every query must end in
  // exactly one of: completed with the bit-identical expected ranking
  // (its snapshot was pinned), or failed with Expired/NotFound (it fetched
  // after the eviction). Anything else — a torn graph, a crash, a TSan
  // report — is a bug in the storage decomposition.
  const GraphPtr reference_graph = ChainGraph(50);
  const RankedList expected =
      MakeAlgorithm(AlgorithmKind::kPageRank)
          ->Run(*reference_graph, AlgorithmRequest{})
          .value();

  PlatformOptions options;
  options.graph_store_bytes = 3 * reference_graph->MemoryBytes();
  options.result_cache_bytes = 0;  // every admitted query runs the kernel
  options.num_workers = 4;
  options.uuid_seed = 19;
  Datastore store(nullptr, options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);

  constexpr int kThreads = 3;
  constexpr int kIters = 30;
  const auto dataset_name = [](int t, int i) {
    return "d-" + std::to_string(t) + "-" + std::to_string(i);
  };

  std::vector<std::thread> uploaders;
  for (int t = 0; t < kThreads; ++t) {
    uploaders.emplace_back([&store, &dataset_name, t] {
      for (int i = 0; i < kIters; ++i) {
        EXPECT_TRUE(store.PutDataset(dataset_name(t, i), ChainGraph(50)).ok());
        // Interleave reads that walk the store's shared state.
        (void)store.UploadedDatasets();
        (void)store.graph_store().stats();
      }
    });
  }
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kThreads; ++t) {
    queriers.emplace_back([&gateway, &ids, &dataset_name, t] {
      for (int i = 0; i < kIters; ++i) {
        TaskBuilder builder;
        (void)builder.Add(dataset_name(t, i), "pagerank", "");
        auto id = gateway.SubmitQuerySet(builder.Build());
        if (id.ok()) ids[t].push_back(std::move(id).value());
      }
    });
  }
  for (std::thread& thread : uploaders) thread.join();
  for (std::thread& thread : queriers) thread.join();

  size_t completed = 0;
  size_t expired_or_missing = 0;
  for (const auto& batch : ids) {
    for (const std::string& id : batch) {
      ASSERT_TRUE(*gateway.WaitForCompletion(id, 120.0));
      const auto results = gateway.GetResults(id).value();
      ASSERT_EQ(results.size(), 1u);
      const TaskResult& result = results[0];
      if (result.status.ok()) {
        ++completed;
        EXPECT_EQ(result.ranking, expected) << result.task_id;
      } else {
        ++expired_or_missing;
        EXPECT_TRUE(result.status.code() == StatusCode::kExpired ||
                    result.status.code() == StatusCode::kNotFound)
            << result.status.ToString();
      }
    }
  }
  // The budget fits 3 graphs and each querier targets its own uploader's
  // most recent names, so a healthy run completes some queries; all of
  // them completing is equally fine (uploads may simply have outrun
  // evictions of queried names).
  EXPECT_GT(completed + expired_or_missing, 0u);
}

TEST(StressTest, SpillChurnUnderConcurrentQueriesIsBitIdentical) {
  // Same eviction churn as above, but with the disk spill tier attached:
  // eviction demotes instead of destroying, so *no* query may answer
  // Expired — every admitted query either completes with the bit-identical
  // expected ranking (pinned snapshot, or transparently reloaded from
  // disk) or reports NotFound (it raced ahead of its upload). Exercises
  // the evict→serialize→spill and miss→reload→promote paths under
  // concurrent kernels; run under TSan via tools/verify.sh.
  const GraphPtr reference_graph = ChainGraph(50);
  const RankedList expected =
      MakeAlgorithm(AlgorithmKind::kPageRank)
          ->Run(*reference_graph, AlgorithmRequest{})
          .value();

  PlatformOptions options;
  options.graph_store_bytes = 2 * reference_graph->MemoryBytes();
  options.result_cache_bytes = 0;  // every admitted query runs the kernel
  options.num_workers = 4;
  options.uuid_seed = 23;
  options.spill_dir = FreshSpillDir("stress_churn");
  Datastore store(nullptr, options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);

  constexpr int kThreads = 3;
  constexpr int kIters = 20;
  const auto dataset_name = [](int t, int i) {
    return "d-" + std::to_string(t) + "-" + std::to_string(i);
  };

  std::vector<std::thread> uploaders;
  for (int t = 0; t < kThreads; ++t) {
    uploaders.emplace_back([&store, &dataset_name, t] {
      for (int i = 0; i < kIters; ++i) {
        EXPECT_TRUE(store.PutDataset(dataset_name(t, i), ChainGraph(50)).ok());
        // Interleave reads that cross both tiers.
        (void)store.GetDataset(dataset_name(t, i / 2));
        (void)store.graph_store().stats();
      }
    });
  }
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kThreads; ++t) {
    queriers.emplace_back([&gateway, &ids, &dataset_name, t] {
      for (int i = 0; i < kIters; ++i) {
        TaskBuilder builder;
        (void)builder.Add(dataset_name(t, i), "pagerank", "");
        auto id = gateway.SubmitQuerySet(builder.Build());
        if (id.ok()) ids[t].push_back(std::move(id).value());
      }
    });
  }
  for (std::thread& thread : uploaders) thread.join();
  for (std::thread& thread : queriers) thread.join();

  size_t completed = 0;
  for (const auto& batch : ids) {
    for (const std::string& id : batch) {
      ASSERT_TRUE(*gateway.WaitForCompletion(id, 120.0));
      const auto results = gateway.GetResults(id).value();
      ASSERT_EQ(results.size(), 1u);
      const TaskResult& result = results[0];
      if (result.status.ok()) {
        ++completed;
        EXPECT_EQ(result.ranking, expected) << result.task_id;
      } else {
        // With an unbounded spill tier nothing ever expires: the only
        // legal failure is a submit that outran its upload.
        EXPECT_EQ(result.status.code(), StatusCode::kNotFound)
            << result.status.ToString();
      }
    }
  }
  EXPECT_GT(completed, 0u);
  // The churn really did hit the disk tier. Demotion is write-behind, so
  // barrier on the flush thread before reading the counter.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GT(store.dataset_spill()->stats().spills, 0u);
}

TEST(StressTest, ConcurrentResultSpillReloadsStayConsistent) {
  // Writers push fresh results through a 2-slot retention window (every
  // insert demotes the oldest to disk) while readers reload arbitrary
  // ids. Each id's payload is derived from the id, so a reload can be
  // checked for integrity regardless of which tier served it.
  PlatformOptions options;
  options.max_retained_results = 2;
  options.spill_dir = FreshSpillDir("stress_result_spill");
  Datastore store(nullptr, options);

  constexpr int kThreads = 3;
  constexpr int kIters = 40;
  const auto result_for = [](int t, int i) {
    TaskResult result;
    result.task_id = "t" + std::to_string(t) + "-" + std::to_string(i);
    result.seconds = t * 1000.0 + i;
    result.ranking = {{static_cast<NodeId>(i), static_cast<double>(t)}};
    return result;
  };
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, &result_for, t] {
      for (int i = 0; i < kIters; ++i) store.PutResult(result_for(t, i));
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&store, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string id =
            "t" + std::to_string(t) + "-" + std::to_string(i / 2);
        auto result = store.GetResult(id);
        if (result.ok()) {
          EXPECT_EQ(result->task_id, id);
          EXPECT_DOUBLE_EQ(result->seconds, t * 1000.0 + i / 2);
        }
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  for (std::thread& thread : readers) thread.join();
  // After the dust settles every written result is reachable — memory or
  // disk — and intact.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      const std::string id = "t" + std::to_string(t) + "-" + std::to_string(i);
      const TaskResult result = store.GetResult(id).value();
      EXPECT_DOUBLE_EQ(result.seconds, t * 1000.0 + i);
    }
  }
}

TEST(StressTest, WriteBehindChurnWithBackpressureStaysConsistent) {
  // Hammers the write-behind tier directly with a buffer bound small enough
  // that backpressure engages constantly: writers enqueue (and block),
  // the flusher drains, readers cross buffer and disk, and an eraser
  // retires whole prefixes mid-flight. Payloads are derived from their key
  // so any tier can be checked for integrity. Run under TSan via
  // tools/verify.sh.
  SpillTierOptions options;
  options.write_behind_bytes = 4096;  // a handful of entries at most
  options.compression = true;
  SpillTier tier(FreshSpillDir("stress_write_behind"), options, "dataset");

  constexpr int kThreads = 3;
  constexpr int kIters = 60;
  const auto key_for = [](int t, int i) {
    return "w" + std::to_string(t) + "/k" + std::to_string(i);
  };
  const auto payload_for = [](int t, int i) {
    return std::string(512 + 64 * (i % 5), static_cast<char>('a' + t));
  };

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        EXPECT_TRUE(tier
                        .Put(key_for(t, i), payload_for(t, i),
                             static_cast<uint64_t>(i))
                        .ok());
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto loaded = tier.Get(key_for(t, i / 2));
        if (loaded.ok()) {
          EXPECT_EQ(loaded->payload, payload_for(t, i / 2));
        }
        (void)tier.Contains(key_for((t + 1) % kThreads, i));
        (void)tier.stats();
      }
    });
  }
  std::thread eraser([&] {
    for (int i = 0; i < kIters / 2; ++i) {
      (void)tier.ErasePrefix("w0/k1");  // retires k1, k10..k19 repeatedly
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : writers) thread.join();
  for (std::thread& thread : readers) thread.join();
  eraser.join();
  tier.Flush();

  // Every surviving key round-trips bit-identically from disk.
  for (const std::string& key : tier.Keys()) {
    const int t = key[1] - '0';
    const int i = std::stoi(key.substr(key.find("/k") + 2));
    EXPECT_EQ(tier.Get(key).value().payload, payload_for(t, i)) << key;
  }
  // The churn really exercised the buffer: with a 4 KiB bound and ~600-byte
  // payloads, writers must have outpaced the flusher at least once.
  EXPECT_GT(tier.stats().backpressure_waits, 0u);
}

TEST(StressTest, ConcurrentResultCacheSpillChurn) {
  // The result cache's own disk tier under concurrency: a budget of ~2
  // entries keeps demotion constant, readers force reload-and-re-admit
  // cycles (which themselves demote), and an invalidator erases prefixes
  // across both tiers. Entries are fingerprint-keyed and content-derived,
  // so a reload served from either tier must match its key exactly.
  SpillTier spill(FreshSpillDir("stress_cache_spill"),
                  SpillTierOptions{0, 1u << 20, true}, "cached result");
  TaskResult probe;
  probe.task_id = "t0-0";
  probe.ranking.assign(50, {0, 0.0});
  const size_t one = ResultCache::EstimateBytes("d0/fp00", probe);
  ResultCache cache(2 * one + one / 2, &spill);

  constexpr int kThreads = 3;
  constexpr int kIters = 50;
  const auto fingerprint = [](int t, int i) {
    return "d" + std::to_string(t) + "/fp" + std::to_string(i);
  };
  const auto result_for = [](int t, int i) {
    TaskResult result;
    result.task_id = "t" + std::to_string(t) + "-" + std::to_string(i);
    result.ranking.assign(50, {static_cast<NodeId>(i),
                               static_cast<double>(t)});
    return result;
  };

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        cache.Put(fingerprint(t, i), result_for(t, i));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto hit = cache.Get(fingerprint(t, i / 2));
        if (hit.has_value()) {
          EXPECT_EQ(hit->task_id,
                    "t" + std::to_string(t) + "-" + std::to_string(i / 2));
        }
      }
    });
  }
  std::thread invalidator([&] {
    for (int i = 0; i < kIters / 4; ++i) {
      (void)cache.ErasePrefix("d1/");
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : writers) thread.join();
  for (std::thread& thread : readers) thread.join();
  invalidator.join();
  spill.Flush();

  // Whatever survived — in memory or on disk — is intact under its key.
  const ResultCacheStats stats = cache.stats();
  EXPECT_GT(stats.disk_spills, 0u);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      const auto hit = cache.Get(fingerprint(t, i));
      if (hit.has_value()) {
        EXPECT_EQ(hit->task_id,
                  "t" + std::to_string(t) + "-" + std::to_string(i));
      }
    }
  }
}

TEST(StressTest, StatusServiceConcurrentTransitions) {
  StatusService status;
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(status.Track("t" + std::to_string(i)).ok());
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&status, t] {
      for (int i = t; i < kTasks; i += 4) {
        const std::string id = "t" + std::to_string(i);
        (void)status.SetState(id, TaskState::kRunning);
        (void)status.SetState(id, TaskState::kCompleted);
      }
    });
  }
  std::vector<std::string> all;
  for (int i = 0; i < kTasks; ++i) all.push_back("t" + std::to_string(i));
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE(*status.WaitUntilTerminal(all, 10.0));
}

}  // namespace
}  // namespace cyclerank
