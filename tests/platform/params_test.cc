#include "platform/params.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(ParamMapTest, ParsesKeyValuePairs) {
  const ParamMap params = ParamMap::Parse("k=3, sigma=exp, alpha=0.3").value();
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(params.GetString("k", ""), "3");
  EXPECT_EQ(params.GetString("sigma", ""), "exp");
}

TEST(ParamMapTest, KeysAreCaseInsensitive) {
  const ParamMap params = ParamMap::Parse("K=3, Sigma=exp").value();
  EXPECT_TRUE(params.Has("k"));
  EXPECT_TRUE(params.Has("SIGMA"));
  EXPECT_EQ(params.GetString("sigma", ""), "exp");
}

TEST(ParamMapTest, ValuesKeepSpaces) {
  const ParamMap params = ParamMap::Parse("source=Fake news").value();
  EXPECT_EQ(params.GetString("source", ""), "Fake news");
}

TEST(ParamMapTest, SemicolonSeparatorAndEmptySegments) {
  const ParamMap params = ParamMap::Parse("a=1; b=2,,c=3,").value();
  EXPECT_EQ(params.size(), 3u);
}

TEST(ParamMapTest, EmptyStringIsEmptyMap) {
  EXPECT_TRUE(ParamMap::Parse("").value().empty());
  EXPECT_TRUE(ParamMap::Parse("   ").value().empty());
}

TEST(ParamMapTest, RejectsMalformedPairs) {
  EXPECT_FALSE(ParamMap::Parse("novalue").ok());
  EXPECT_FALSE(ParamMap::Parse("=5").ok());
  EXPECT_FALSE(ParamMap::Parse("a=1, a=2").ok());  // duplicate
}

TEST(ParamMapTest, TypedGettersWithFallback) {
  const ParamMap params = ParamMap::Parse("alpha=0.3, k=5").value();
  EXPECT_DOUBLE_EQ(params.GetDouble("alpha", 0.85).value(), 0.3);
  EXPECT_DOUBLE_EQ(params.GetDouble("missing", 0.85).value(), 0.85);
  EXPECT_EQ(params.GetInt("k", 3).value(), 5);
  EXPECT_EQ(params.GetInt("missing", 3).value(), 3);
}

TEST(ParamMapTest, TypedGettersRejectMalformedValues) {
  const ParamMap params = ParamMap::Parse("alpha=abc").value();
  EXPECT_FALSE(params.GetDouble("alpha", 0.85).ok());
}

TEST(ParamMapTest, ToStringCanonicalOrder) {
  const ParamMap params = ParamMap::Parse("z=1, a=2").value();
  EXPECT_EQ(params.ToString(), "a=2, z=1");
}

TEST(ParamMapTest, KeysSorted) {
  const ParamMap params = ParamMap::Parse("k=3, alpha=0.3").value();
  EXPECT_EQ(params.Keys(), (std::vector<std::string>{"alpha", "k"}));
}

Graph LabeledGraph() {
  GraphBuilder builder;
  builder.AddEdge("Fake news", "CNN");
  builder.AddEdge("CNN", "Fake news");
  return builder.Build().value();
}

TEST(BuildRequestTest, ResolvesReferenceByLabel) {
  const Graph g = LabeledGraph();
  const ParamMap params = ParamMap::Parse("source=Fake news, k=3").value();
  const AlgorithmRequest request = BuildRequest(g, params).value();
  EXPECT_EQ(request.reference, g.FindNode("Fake news"));
  EXPECT_EQ(request.max_cycle_length, 3u);
}

TEST(BuildRequestTest, ResolvesNumericReferenceOnUnlabeledGraph) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  const ParamMap params = ParamMap::Parse("source=1").value();
  EXPECT_EQ(BuildRequest(g, params).value().reference, 1u);
}

TEST(BuildRequestTest, AcceptsReferenceAliases) {
  const Graph g = LabeledGraph();
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("reference=CNN").value())
                .value()
                .reference,
            g.FindNode("CNN"));
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("r=CNN").value()).value().reference,
            g.FindNode("CNN"));
}

TEST(BuildRequestTest, UnknownReferenceIsNotFound) {
  const Graph g = LabeledGraph();
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("source=BBC").value())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(BuildRequestTest, ParsesAllNumericKnobs) {
  const Graph g = LabeledGraph();
  const ParamMap params =
      ParamMap::Parse(
          "alpha=0.5, k=4, sigma=lin, tolerance=1e-8, max_iterations=50, "
          "epsilon=1e-5, walks=1234, seed=9, top_k=7")
          .value();
  const AlgorithmRequest request = BuildRequest(g, params).value();
  EXPECT_DOUBLE_EQ(request.alpha, 0.5);
  EXPECT_EQ(request.max_cycle_length, 4u);
  EXPECT_EQ(request.scoring, ScoringFunction::kLinear);
  EXPECT_DOUBLE_EQ(request.tolerance, 1e-8);
  EXPECT_EQ(request.max_iterations, 50u);
  EXPECT_DOUBLE_EQ(request.epsilon, 1e-5);
  EXPECT_EQ(request.num_walks, 1234u);
  EXPECT_EQ(request.seed, 9u);
  EXPECT_EQ(request.top_k, 7u);
}

TEST(BuildRequestTest, DefaultsWhenAbsent) {
  const Graph g = LabeledGraph();
  const AlgorithmRequest request = BuildRequest(g, ParamMap()).value();
  EXPECT_EQ(request.reference, kInvalidNode);
  EXPECT_DOUBLE_EQ(request.alpha, 0.85);
  EXPECT_EQ(request.max_cycle_length, 3u);
  EXPECT_EQ(request.scoring, ScoringFunction::kExponential);
  EXPECT_EQ(request.num_shards, 0u);  // monolithic execution
}

TEST(BuildRequestTest, ParsesShardCount) {
  const Graph g = LabeledGraph();
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("shards=4").value())
                .value()
                .num_shards,
            4u);
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("shards=0").value())
                .value()
                .num_shards,
            0u);
  // Anywhere in [0, 2^16) is accepted; the cap and anything non-numeric
  // are rejected with a range-stating error.
  EXPECT_EQ(BuildRequest(g, ParamMap::Parse("shards=65535").value())
                .value()
                .num_shards,
            65535u);
  EXPECT_FALSE(BuildRequest(g, ParamMap::Parse("shards=-1").value()).ok());
  const auto capped = BuildRequest(g, ParamMap::Parse("shards=65536").value());
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(capped.status().message().find("shards"), std::string::npos);
  EXPECT_FALSE(BuildRequest(g, ParamMap::Parse("shards=many").value()).ok());
}

TEST(BuildRequestTest, RejectsUnknownKeys) {
  const Graph g = LabeledGraph();
  const ParamMap params = ParamMap::Parse("alhpa=0.3").value();  // typo
  EXPECT_EQ(BuildRequest(g, params).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuildRequestTest, RejectsBadScoringName) {
  const Graph g = LabeledGraph();
  EXPECT_FALSE(BuildRequest(g, ParamMap::Parse("sigma=cubic").value()).ok());
}

TEST(BuildRequestTest, MaxloopAliasForK) {
  const Graph g = LabeledGraph();
  EXPECT_EQ(
      BuildRequest(g, ParamMap::Parse("maxloop=5").value()).value()
          .max_cycle_length,
      5u);
}

std::string Fp(const std::string& dataset, const std::string& algorithm,
               const std::string& params) {
  return TaskFingerprint(dataset, algorithm, ParamMap::Parse(params).value());
}

TEST(TaskFingerprintTest, OrderAndCaseIndependent) {
  EXPECT_EQ(Fp("d", "pagerank", "alpha=0.85, K=3"),
            Fp("d", "pagerank", "k=3, alpha=0.85"));
  EXPECT_EQ(Fp("d", "PageRank", ""), Fp("d", "pagerank", ""));
}

TEST(TaskFingerprintTest, ThreadsIsExecutionOnly) {
  // threads= changes latency, never results (kernels are bit-identical at
  // any thread count), so it must not fragment the cache.
  EXPECT_EQ(Fp("d", "pagerank", "alpha=0.85, threads=8"),
            Fp("d", "pagerank", "alpha=0.85"));
  EXPECT_EQ(Fp("d", "pagerank", "threads=1"), Fp("d", "pagerank", "threads=4"));
}

TEST(TaskFingerprintTest, ShardsIsExecutionOnly) {
  // Like threads=, the shard count only picks an execution strategy: the
  // sharded kernels are bit-identical to the monolithic path, so two
  // submissions differing only in shards= must share one cached result.
  EXPECT_EQ(Fp("d", "pagerank", "alpha=0.85, shards=8"),
            Fp("d", "pagerank", "alpha=0.85"));
  EXPECT_EQ(Fp("d", "pagerank", "shards=1"), Fp("d", "pagerank", "shards=4"));
  EXPECT_EQ(Fp("d", "pagerank", "threads=2, shards=3"),
            Fp("d", "pagerank", ""));
}

TEST(TaskFingerprintTest, ParameterAliasesCollapse) {
  EXPECT_EQ(Fp("d", "cyclerank", "source=a"), Fp("d", "cyclerank", "reference=a"));
  EXPECT_EQ(Fp("d", "cyclerank", "source=a"), Fp("d", "cyclerank", "r=a"));
  EXPECT_EQ(Fp("d", "cyclerank", "maxloop=5"), Fp("d", "cyclerank", "k=5"));
  EXPECT_EQ(Fp("d", "cyclerank", "sigma=exp"), Fp("d", "cyclerank", "scoring=exp"));
  // BuildRequest lets maxloop override k when both are given.
  EXPECT_EQ(Fp("d", "cyclerank", "k=3, maxloop=5"), Fp("d", "cyclerank", "k=5"));
}

TEST(TaskFingerprintTest, AlgorithmAliasesCollapse) {
  EXPECT_EQ(Fp("d", "ppr", "source=a"), Fp("d", "pers_pagerank", "source=a"));
  EXPECT_EQ(Fp("d", "pr", ""), Fp("d", "pagerank", ""));
  EXPECT_EQ(Fp("d", "PageRank", ""), Fp("d", "pagerank", ""));
  // Unknown (custom-registered) names stay verbatim: the registry is
  // case-sensitive for them, so "MyAlgo" and "myalgo" can be two different
  // algorithms and must never share a cache slot.
  EXPECT_NE(Fp("d", "MyAlgo", ""), Fp("d", "myalgo", ""));
}

TEST(TaskFingerprintTest, DistinctComputationsStayDistinct) {
  EXPECT_NE(Fp("d1", "pagerank", ""), Fp("d2", "pagerank", ""));
  EXPECT_NE(Fp("d", "pagerank", ""), Fp("d", "cheirank", ""));
  EXPECT_NE(Fp("d", "pagerank", "alpha=0.85"), Fp("d", "pagerank", "alpha=0.9"));
  EXPECT_NE(Fp("d", "pagerank", "alpha=0.85"), Fp("d", "pagerank", ""));
  EXPECT_NE(Fp("d", "ppr_montecarlo", "seed=1"),
            Fp("d", "ppr_montecarlo", "seed=2"));
}

TEST(TaskFingerprintTest, GenerationSeparatesRebindings) {
  // Re-binding an uploaded name after eviction changes its generation, so
  // the two bindings' computations can never share a cache or
  // single-flight key.
  EXPECT_NE(TaskFingerprint("d", 1, "pagerank", ParamMap()),
            TaskFingerprint("d", 2, "pagerank", ParamMap()));
  EXPECT_EQ(TaskFingerprint("d", "pagerank", ParamMap()),
            TaskFingerprint("d", 0, "pagerank", ParamMap()));
  // A user parameter named "gen" sorts into the params section and cannot
  // reach the structural generation slot.
  ParamMap with_gen;
  with_gen.Set("gen", "2");
  EXPECT_NE(TaskFingerprint("d", 2, "pagerank", ParamMap()),
            TaskFingerprint("d", 0, "pagerank", with_gen));
}

TEST(TaskFingerprintTest, SeparatorsAreEscaped) {
  // Adversarial names containing the fingerprint separators must not make
  // two different specs collide.
  EXPECT_NE(TaskFingerprint("a&algorithm", "b", ParamMap()),
            TaskFingerprint("a", "algorithm&b", ParamMap()));
  ParamMap tricky;
  tricky.Set("seed", "1&alpha=2");
  ParamMap plain = ParamMap::Parse("seed=1, alpha=2").value();
  EXPECT_NE(TaskFingerprint("d", "pagerank", tricky),
            TaskFingerprint("d", "pagerank", plain));
}

}  // namespace
}  // namespace cyclerank
