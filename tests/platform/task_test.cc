#include "platform/task.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(TaskSpecTest, ToStringRendersTriple) {
  TaskSpec spec;
  spec.dataset = "enwiki-mini-2018";
  spec.algorithm = "cyclerank";
  spec.params = ParamMap::Parse("k=3, sigma=exp").value();
  EXPECT_EQ(spec.ToString(), "enwiki-mini-2018 | cyclerank | k=3, sigma=exp");
}

TEST(TaskSpecTest, ToStringOmitsEmptyParams) {
  TaskSpec spec;
  spec.dataset = "d";
  spec.algorithm = "pagerank";
  EXPECT_EQ(spec.ToString(), "d | pagerank");
}

TEST(TaskStateTest, NamesAndTerminality) {
  EXPECT_EQ(TaskStateToString(TaskState::kPending), "pending");
  EXPECT_EQ(TaskStateToString(TaskState::kRunning), "running");
  EXPECT_EQ(TaskStateToString(TaskState::kCompleted), "completed");
  EXPECT_FALSE(IsTerminal(TaskState::kPending));
  EXPECT_FALSE(IsTerminal(TaskState::kFetching));
  EXPECT_FALSE(IsTerminal(TaskState::kRunning));
  EXPECT_TRUE(IsTerminal(TaskState::kCompleted));
  EXPECT_TRUE(IsTerminal(TaskState::kFailed));
  EXPECT_TRUE(IsTerminal(TaskState::kCancelled));
}

TEST(TaskBuilderTest, AddsTasks) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("wiki", "pagerank", "alpha=0.85").ok());
  ASSERT_TRUE(builder.Add("wiki", "cyclerank", "k=3, source=Pasta").ok());
  EXPECT_EQ(builder.size(), 2u);
  const QuerySet set = builder.Build();
  EXPECT_EQ(set.tasks.size(), 2u);
  EXPECT_EQ(set.tasks[0].algorithm, "pagerank");
}

TEST(TaskBuilderTest, RejectsEmptyFields) {
  TaskBuilder builder;
  EXPECT_EQ(builder.Add("", "pagerank", "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.Add("wiki", "", "").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(builder.empty());
}

TEST(TaskBuilderTest, RejectsMalformedParams) {
  TaskBuilder builder;
  EXPECT_EQ(builder.Add("wiki", "pagerank", "not-params").code(),
            StatusCode::kParseError);
}

TEST(TaskBuilderTest, RemoveByIndexMirrorsFig2RowDelete) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d1", "pagerank", "").ok());
  ASSERT_TRUE(builder.Add("d2", "cheirank", "").ok());
  ASSERT_TRUE(builder.Add("d3", "2drank", "").ok());
  ASSERT_TRUE(builder.Remove(1).ok());
  ASSERT_EQ(builder.size(), 2u);
  EXPECT_EQ(builder.tasks()[0].dataset, "d1");
  EXPECT_EQ(builder.tasks()[1].dataset, "d3");
}

TEST(TaskBuilderTest, RemoveOutOfRange) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d", "pagerank", "").ok());
  EXPECT_EQ(builder.Remove(5).code(), StatusCode::kOutOfRange);
}

TEST(TaskBuilderTest, ClearMirrorsFig2TrashBin) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d", "pagerank", "").ok());
  ASSERT_TRUE(builder.Add("d", "cheirank", "").ok());
  builder.Clear();
  EXPECT_TRUE(builder.empty());
  EXPECT_TRUE(builder.Build().tasks.empty());
}

TEST(TaskBuilderTest, BuilderKeepsContentsAfterBuild) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d", "pagerank", "").ok());
  const QuerySet first = builder.Build();
  ASSERT_TRUE(builder.Add("d", "cheirank", "").ok());
  const QuerySet second = builder.Build();
  EXPECT_EQ(first.tasks.size(), 1u);
  EXPECT_EQ(second.tasks.size(), 2u);
}

}  // namespace
}  // namespace cyclerank
