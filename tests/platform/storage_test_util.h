#ifndef CYCLERANK_TESTS_PLATFORM_STORAGE_TEST_UTIL_H_
#define CYCLERANK_TESTS_PLATFORM_STORAGE_TEST_UTIL_H_

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "platform/platform_options.h"

namespace cyclerank {

/// Directed chain 0→1→…→n-1: a graph whose MemoryBytes scales with n,
/// shared by the storage-layer suites.
inline GraphPtr ChainGraph(NodeId n) {
  GraphBuilder builder;
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.BuildShared().value();
}

/// Options with only the uploaded-dataset byte budget set.
inline PlatformOptions GraphBudget(size_t bytes) {
  PlatformOptions options;
  options.graph_store_bytes = bytes;
  return options;
}

/// Options with only the result-retention bound set.
inline PlatformOptions RetainResults(size_t n) {
  PlatformOptions options;
  options.max_retained_results = n;
  return options;
}

/// A fresh, empty directory under the test temp root for spill-tier
/// suites; any leftovers from a previous run are removed first.
inline std::string FreshSpillDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("cyclerank_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace cyclerank

#endif  // CYCLERANK_TESTS_PLATFORM_STORAGE_TEST_UTIL_H_
