#include "platform/spill_tier.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

namespace fs = std::filesystem;

/// Captures warning+ log lines for the duration of a test.
class LogCapture {
 public:
  LogCapture() {
    Logger::Global().set_sink([this](LogLevel level, std::string_view msg) {
      if (level >= LogLevel::kWarning) lines_.emplace_back(msg);
    });
  }
  ~LogCapture() { Logger::Global().set_sink(nullptr); }

  bool Contains(std::string_view needle) const {
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  size_t size() const { return lines_.size(); }

 private:
  std::vector<std::string> lines_;
};

TEST(SpillTierTest, PutGetRoundTripWithMeta) {
  SpillTier tier(FreshSpillDir("roundtrip"), 0, "dataset");
  ASSERT_TRUE(tier.enabled());
  // The payload is opaque bytes — embedded NULs and high bytes included.
  const std::string payload("payload\0bytes\xff", 14);
  ASSERT_TRUE(tier.Put("my key / with+specials", payload, 42).ok());
  EXPECT_TRUE(tier.Contains("my key / with+specials"));
  EXPECT_EQ(tier.Meta("my key / with+specials"), 42u);
  const SpillTier::Loaded loaded = tier.Get("my key / with+specials").value();
  EXPECT_EQ(loaded.payload, payload);
  EXPECT_EQ(loaded.meta, 42u);
  EXPECT_EQ(tier.stats().spills, 1u);
  EXPECT_EQ(tier.stats().reloads, 1u);
}

TEST(SpillTierTest, MissesAndErase) {
  SpillTier tier(FreshSpillDir("misses"), 0, "dataset");
  EXPECT_EQ(tier.Get("ghost").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(tier.Put("a", "x").ok());
  tier.Erase("a");
  EXPECT_FALSE(tier.Contains("a"));
  // Erase is supersession, not budget pressure: no pruned marker.
  EXPECT_FALSE(tier.WasPruned("a"));
  EXPECT_EQ(tier.Get("a").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, OverwriteReplacesPayloadAndAccounting) {
  SpillTier tier(FreshSpillDir("overwrite"), 0, "dataset");
  ASSERT_TRUE(tier.Put("k", std::string(1000, 'a'), 1).ok());
  const size_t bytes_before = tier.stats().bytes;
  ASSERT_TRUE(tier.Put("k", "tiny", 2).ok());
  EXPECT_EQ(tier.Get("k").value().payload, "tiny");
  EXPECT_EQ(tier.Meta("k"), 2u);
  EXPECT_EQ(tier.stats().entries, 1u);
  EXPECT_LT(tier.stats().bytes, bytes_before);
}

TEST(SpillTierTest, BudgetPrunesLeastRecentlyUsed) {
  // Each file is ~100 payload bytes + header; a 3-file budget.
  const std::string payload(100, 'p');
  SpillTier tier(FreshSpillDir("prune"), 3 * (payload.size() + 64), "dataset");
  ASSERT_TRUE(tier.Put("a", payload).ok());
  ASSERT_TRUE(tier.Put("b", payload).ok());
  ASSERT_TRUE(tier.Put("c", payload).ok());
  // Touch "a" so "b" is the LRU victim of the next Put.
  ASSERT_TRUE(tier.Get("a").ok());
  ASSERT_TRUE(tier.Put("d", payload).ok());
  EXPECT_TRUE(tier.Contains("a"));
  EXPECT_FALSE(tier.Contains("b"));
  EXPECT_TRUE(tier.WasPruned("b"));
  const Status pruned = tier.Get("b").status();
  EXPECT_EQ(pruned.code(), StatusCode::kExpired);
  EXPECT_NE(pruned.message().find("pruned"), std::string::npos);
  EXPECT_EQ(tier.stats().prunes, 1u);
  // Re-spilling a pruned key revives it.
  ASSERT_TRUE(tier.Put("b", payload).ok());
  EXPECT_FALSE(tier.WasPruned("b"));
}

TEST(SpillTierTest, OversizedPayloadRejectedAndMarkedPruned) {
  SpillTier tier(FreshSpillDir("oversize"), 64, "result");
  const Status status = tier.Put("big", std::string(1000, 'x'));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(tier.Contains("big"));
  EXPECT_TRUE(tier.WasPruned("big"));
  EXPECT_EQ(tier.Get("big").status().code(), StatusCode::kExpired);
}

TEST(SpillTierTest, RecoveryRestoresEntriesAndRecencyOrder) {
  const std::string dir = FreshSpillDir("recovery");
  const std::string payload(50, 'r');
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("cold", payload, 7).ok());
    ASSERT_TRUE(tier.Put("warm", payload, 8).ok());
    ASSERT_TRUE(tier.Put("hot", payload, 9).ok());
  }
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 3u);
  EXPECT_EQ(revived.Keys(),
            (std::vector<std::string>{"cold", "hot", "warm"}));
  EXPECT_EQ(revived.Meta("cold"), 7u);
  EXPECT_EQ(revived.MaxMeta(), 9u);
  EXPECT_EQ(revived.Get("warm").value().payload, payload);
  // Recency order survived via the manifest: under a budget that holds
  // only two files, the next Put prunes "cold" first.
  SpillTier bounded(dir, 3 * (payload.size() + 64), "dataset");
  ASSERT_TRUE(bounded.Put("new", payload, 10).ok());
  EXPECT_FALSE(bounded.Contains("cold"));
  EXPECT_TRUE(bounded.Contains("hot"));
  EXPECT_TRUE(bounded.Contains("warm"));
}

TEST(SpillTierTest, TruncatedFileSkippedAtRecoveryWithWarning) {
  const std::string dir = FreshSpillDir("truncated");
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("whole", std::string(100, 'w')).ok());
    ASSERT_TRUE(tier.Put("torn", std::string(100, 't')).ok());
  }
  // Truncate one spill file, as a crashed writer would.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("torn", 0) == 0) {
      fs::resize_file(entry.path(), 20);
    }
  }
  LogCapture log;
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 1u);
  EXPECT_EQ(revived.stats().skipped_corrupt_files, 1u);
  EXPECT_TRUE(log.Contains("skipping spill file"));
  EXPECT_TRUE(revived.Contains("whole"));
  EXPECT_FALSE(revived.Contains("torn"));
  EXPECT_EQ(revived.Get("torn").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, BitRotDetectedByChecksumOnGet) {
  const std::string dir = FreshSpillDir("bitrot");
  SpillTier tier(dir, 0, "dataset");
  ASSERT_TRUE(tier.Put("k", std::string(100, 'k')).ok());
  // Flip a payload byte without changing the file size.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename() == "manifest") continue;
    std::fstream file(entry.path(), std::ios::in | std::ios::out |
                                        std::ios::binary);
    file.seekp(-1, std::ios::end);
    file.put('X');
  }
  LogCapture log;
  const Status status = tier.Get("k").status();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("corrupt"), std::string::npos);
  EXPECT_TRUE(log.Contains("checksum"));
  // The corrupt entry was dropped, not retried forever.
  EXPECT_FALSE(tier.Contains("k"));
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, StragglerFilesWithoutManifestAreRecovered) {
  const std::string dir = FreshSpillDir("straggler");
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("a", "payload-a", 1).ok());
    ASSERT_TRUE(tier.Put("b", "payload-b", 2).ok());
  }
  fs::remove(fs::path(dir) / "manifest");
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 2u);
  EXPECT_EQ(revived.Get("a").value().payload, "payload-a");
  EXPECT_EQ(revived.Get("b").value().payload, "payload-b");
}

TEST(SpillTierTest, DisabledTierDegradesGracefully) {
  // A path that cannot be created: a regular file occupies the name.
  const std::string parent = FreshSpillDir("disabled");
  const std::string blocked = parent + "/occupied";
  std::ofstream(blocked) << "not a directory";
  LogCapture log;
  SpillTier tier(blocked + "/sub", 0, "dataset");
  EXPECT_FALSE(tier.enabled());
  EXPECT_EQ(tier.Put("k", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, LongKeysGetHashedFileNames) {
  SpillTier tier(FreshSpillDir("longkeys"), 0, "dataset");
  const std::string long_a(500, 'a');
  const std::string long_b = long_a + "b";  // same 160-char prefix
  ASSERT_TRUE(tier.Put(long_a, "payload-a").ok());
  ASSERT_TRUE(tier.Put(long_b, "payload-b").ok());
  EXPECT_EQ(tier.Get(long_a).value().payload, "payload-a");
  EXPECT_EQ(tier.Get(long_b).value().payload, "payload-b");
}

// ---- PR 6: write-behind buffer, compression, key filter --------------------

SpillTierOptions WriteBehind(size_t buffer_bytes, size_t max_bytes = 0) {
  SpillTierOptions options;
  options.max_bytes = max_bytes;
  options.write_behind_bytes = buffer_bytes;
  options.compression = true;
  return options;
}

TEST(SpillTierWriteBehindTest, ReadYourWriteBeforeFlush) {
  SpillTier tier(FreshSpillDir("wb_ryw"), WriteBehind(1u << 20), "dataset");
  tier.SetFlushPausedForTest(true);  // hold the entry in the buffer
  ASSERT_TRUE(tier.Put("k", "buffered payload", 5).ok());
  // Fully visible before any byte reaches disk.
  EXPECT_TRUE(tier.Contains("k"));
  EXPECT_EQ(tier.Meta("k"), 5u);
  EXPECT_EQ(tier.Keys(), (std::vector<std::string>{"k"}));
  EXPECT_EQ(tier.MaxMeta(), 5u);
  const SpillTier::Loaded loaded = tier.Get("k").value();
  EXPECT_EQ(loaded.payload, "buffered payload");
  EXPECT_EQ(loaded.meta, 5u);
  SpillTierStats stats = tier.stats();
  EXPECT_EQ(stats.buffer_hits, 1u);
  EXPECT_EQ(stats.queue_depth, 1u);
  EXPECT_EQ(stats.flushes, 0u);
  EXPECT_EQ(stats.entries, 0u);  // nothing on disk yet
  // After the barrier the entry lives on disk and reads come from there.
  tier.SetFlushPausedForTest(false);
  tier.Flush();
  stats = tier.stats();
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(tier.Get("k").value().payload, "buffered payload");
  EXPECT_EQ(tier.stats().reloads, 1u);
}

TEST(SpillTierWriteBehindTest, DestructionDrainsBufferLosingNothing) {
  const std::string dir = FreshSpillDir("wb_drain");
  {
    SpillTier tier(dir, WriteBehind(1u << 20), "dataset");
    tier.SetFlushPausedForTest(true);
    ASSERT_TRUE(tier.Put("a", "payload-a", 1).ok());
    ASSERT_TRUE(tier.Put("b", "payload-b", 2).ok());
    ASSERT_TRUE(tier.Put("c", "payload-c", 3).ok());
    EXPECT_EQ(tier.stats().queue_depth, 3u);
    // Destruction overrides the pause and drains every buffered write.
  }
  SpillTier revived(dir, WriteBehind(1u << 20), "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 3u);
  EXPECT_EQ(revived.Get("a").value().payload, "payload-a");
  EXPECT_EQ(revived.Get("b").value().payload, "payload-b");
  EXPECT_EQ(revived.Get("c").value().payload, "payload-c");
  EXPECT_EQ(revived.MaxMeta(), 3u);
}

TEST(SpillTierWriteBehindTest, BackpressureEngagesAtByteBound) {
  // A bound smaller than two payloads: the first Put is admitted alone,
  // the second must wait for the flusher.
  SpillTier tier(FreshSpillDir("wb_backpressure"), WriteBehind(2048),
                 "dataset");
  tier.SetFlushPausedForTest(true);
  ASSERT_TRUE(tier.Put("first", std::string(1500, 'x')).ok());
  std::atomic<bool> second_done{false};
  std::thread blocked([&] {
    ASSERT_TRUE(tier.Put("second", std::string(1500, 'y')).ok());
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load()) << "Put must block past the byte bound";
  tier.SetFlushPausedForTest(false);  // let the flusher drain "first"
  blocked.join();
  EXPECT_TRUE(second_done.load());
  tier.Flush();
  EXPECT_GE(tier.stats().backpressure_waits, 1u);
  EXPECT_EQ(tier.Get("first").value().payload, std::string(1500, 'x'));
  EXPECT_EQ(tier.Get("second").value().payload, std::string(1500, 'y'));
}

TEST(SpillTierWriteBehindTest, OverwriteWhileBufferedServesNewest) {
  const std::string dir = FreshSpillDir("wb_overwrite");
  {
    SpillTier tier(dir, WriteBehind(1u << 20), "dataset");
    tier.SetFlushPausedForTest(true);
    ASSERT_TRUE(tier.Put("k", "version-1", 1).ok());
    ASSERT_TRUE(tier.Put("k", "version-2", 2).ok());
    EXPECT_EQ(tier.Get("k").value().payload, "version-2");
    EXPECT_EQ(tier.Meta("k"), 2u);
    EXPECT_EQ(tier.stats().queue_depth, 1u);  // one key, newest wins
    tier.SetFlushPausedForTest(false);
    tier.Flush();
    EXPECT_EQ(tier.Get("k").value().payload, "version-2");
  }
  SpillTier revived(dir, WriteBehind(1u << 20), "dataset");
  EXPECT_EQ(revived.Get("k").value().payload, "version-2");
  EXPECT_EQ(revived.Meta("k"), 2u);
}

TEST(SpillTierWriteBehindTest, EraseWhileBufferedDropsTheEntry) {
  SpillTier tier(FreshSpillDir("wb_erase"), WriteBehind(1u << 20), "dataset");
  tier.SetFlushPausedForTest(true);
  ASSERT_TRUE(tier.Put("gone", "payload").ok());
  tier.Erase("gone");
  EXPECT_FALSE(tier.Contains("gone"));
  tier.SetFlushPausedForTest(false);
  tier.Flush();
  EXPECT_FALSE(tier.Contains("gone"));
  EXPECT_EQ(tier.Get("gone").status().code(), StatusCode::kNotFound);
  // Not budget pressure — the caller superseded it.
  EXPECT_FALSE(tier.WasPruned("gone"));
}

TEST(SpillTierWriteBehindTest, ErasePrefixDropsBufferedAndDiskEntries) {
  SpillTier tier(FreshSpillDir("wb_eraseprefix"), WriteBehind(1u << 20),
                 "dataset");
  ASSERT_TRUE(tier.Put("p/disk", "on disk").ok());
  tier.Flush();  // p/disk reaches disk
  tier.SetFlushPausedForTest(true);
  ASSERT_TRUE(tier.Put("p/buffered", "in buffer").ok());
  ASSERT_TRUE(tier.Put("q/kept", "stays").ok());
  EXPECT_EQ(tier.ErasePrefix("p/"), 2u);
  EXPECT_FALSE(tier.Contains("p/disk"));
  EXPECT_FALSE(tier.Contains("p/buffered"));
  EXPECT_TRUE(tier.Contains("q/kept"));
  tier.SetFlushPausedForTest(false);
  tier.Flush();
  EXPECT_EQ(tier.Get("p/buffered").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tier.Get("q/kept").value().payload, "stays");
}

TEST(SpillTierWriteBehindTest, OversizePayloadPrunedOnFlush) {
  // Budget far below the file size: the write-behind Put still accepts
  // the enqueue (the check runs on the flush thread), then the entry is
  // dropped and remembered as pruned — the sync path's kInvalidArgument
  // becomes an asynchronous prune.
  SpillTier tier(FreshSpillDir("wb_oversize"), WriteBehind(1u << 20, 64),
                 "result");
  LogCapture log;
  // Incompressible payload so the encoded file genuinely exceeds 64 bytes.
  std::mt19937_64 rng(7);
  std::string big;
  for (int i = 0; i < 1000; ++i) big.push_back(static_cast<char>(rng() & 0xff));
  ASSERT_TRUE(tier.Put("big", big).ok());
  tier.Flush();
  EXPECT_FALSE(tier.Contains("big"));
  EXPECT_TRUE(tier.WasPruned("big"));
  EXPECT_EQ(tier.Get("big").status().code(), StatusCode::kExpired);
  EXPECT_TRUE(log.Contains("larger than the entire spill budget"));
}

TEST(SpillTierCompressionTest, CompressedFilesRoundTripBitIdentically) {
  SpillTierOptions compressed;  // defaults: compression on, synchronous
  SpillTier tier(FreshSpillDir("cmp_roundtrip"), compressed, "dataset");
  // Repetitive payload (the CSR shape) — must take the LZ path.
  std::string payload;
  for (uint32_t i = 0; i < 20000; ++i) payload += "abcdefgh";
  ASSERT_TRUE(tier.Put("k", payload, 9).ok());
  const SpillTierStats stats = tier.stats();
  EXPECT_LT(stats.bytes, stats.raw_bytes)
      << "compressible payload must shrink on disk";
  EXPECT_EQ(stats.raw_bytes, payload.size());
  const SpillTier::Loaded loaded = tier.Get("k").value();
  EXPECT_EQ(loaded.payload, payload);
  EXPECT_EQ(loaded.meta, 9u);
}

TEST(SpillTierCompressionTest, CorruptCompressedPayloadDegradesToMiss) {
  const std::string dir = FreshSpillDir("cmp_bitrot");
  SpillTierOptions compressed;
  SpillTier tier(dir, compressed, "dataset");
  std::string payload;
  for (uint32_t i = 0; i < 5000; ++i) payload += "abcdefgh";
  ASSERT_TRUE(tier.Put("k", payload).ok());
  // Flip a byte inside the compressed block without changing the size —
  // either the block fails to decode or the raw checksum mismatches;
  // both must degrade to a dropped entry, never corrupt output.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename() == "manifest") continue;
    std::fstream file(entry.path(), std::ios::in | std::ios::out |
                                        std::ios::binary);
    file.seekp(-3, std::ios::end);
    file.put('X');
  }
  LogCapture log;
  const Status status = tier.Get("k").status();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("corrupt"), std::string::npos);
  EXPECT_FALSE(tier.Contains("k"));
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierCompressionTest, UncompressedV1FilesStillLoad) {
  const std::string dir = FreshSpillDir("cmp_backcompat");
  const std::string payload(5000, 'v');
  {
    // The legacy constructor writes the PR-5 uncompressed v1 framing.
    SpillTier v1_tier(dir, 0, "dataset");
    ASSERT_TRUE(v1_tier.Put("old", payload, 7).ok());
  }
  // A compression-enabled tier recovers and reads the v1 file...
  SpillTierOptions compressed;
  SpillTier tier(dir, compressed, "dataset");
  EXPECT_EQ(tier.stats().recovered_files, 1u);
  const SpillTier::Loaded loaded = tier.Get("old").value();
  EXPECT_EQ(loaded.payload, payload);
  EXPECT_EQ(loaded.meta, 7u);
  // ...and new writes (v2) coexist with it across another restart.
  ASSERT_TRUE(tier.Put("new", payload, 8).ok());
  SpillTier revived(dir, compressed, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 2u);
  EXPECT_EQ(revived.Get("old").value().payload, payload);
  EXPECT_EQ(revived.Get("new").value().payload, payload);
}

TEST(SpillTierFilterTest, ColdMissesShortCircuitWithoutDiskProbes) {
  SpillTier tier(FreshSpillDir("filter_cold"), WriteBehind(1u << 20),
                 "dataset");
  ASSERT_TRUE(tier.Put("present", "payload").ok());
  tier.Flush();
  // A key never stored is answered by the filter alone: the counter
  // increments and the exact-index miss counter does not — no lock was
  // taken, no directory probe happened.
  EXPECT_EQ(tier.Get("never-stored").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(tier.Contains("also-never-stored"));
  const SpillTierStats stats = tier.stats();
  EXPECT_EQ(stats.filter_negatives, 2u);
  EXPECT_EQ(stats.misses, 0u);
  // Present keys pass the filter and resolve exactly.
  EXPECT_TRUE(tier.Contains("present"));
}

TEST(SpillTierFilterTest, FilterIsRebuiltByRecovery) {
  const std::string dir = FreshSpillDir("filter_recovery");
  {
    SpillTier tier(dir, WriteBehind(1u << 20), "dataset");
    ASSERT_TRUE(tier.Put("survivor", "payload", 3).ok());
  }
  SpillTier revived(dir, WriteBehind(1u << 20), "dataset");
  // The recovered key passes the filter and reloads; a stranger still
  // short-circuits.
  EXPECT_EQ(revived.Get("survivor").value().payload, "payload");
  EXPECT_EQ(revived.Get("stranger").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(revived.stats().filter_negatives, 1u);
  EXPECT_EQ(revived.stats().misses, 0u);
}

}  // namespace
}  // namespace cyclerank
