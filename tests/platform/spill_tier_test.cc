#include "platform/spill_tier.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

namespace fs = std::filesystem;

/// Captures warning+ log lines for the duration of a test.
class LogCapture {
 public:
  LogCapture() {
    Logger::Global().set_sink([this](LogLevel level, std::string_view msg) {
      if (level >= LogLevel::kWarning) lines_.emplace_back(msg);
    });
  }
  ~LogCapture() { Logger::Global().set_sink(nullptr); }

  bool Contains(std::string_view needle) const {
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  size_t size() const { return lines_.size(); }

 private:
  std::vector<std::string> lines_;
};

TEST(SpillTierTest, PutGetRoundTripWithMeta) {
  SpillTier tier(FreshSpillDir("roundtrip"), 0, "dataset");
  ASSERT_TRUE(tier.enabled());
  // The payload is opaque bytes — embedded NULs and high bytes included.
  const std::string payload("payload\0bytes\xff", 14);
  ASSERT_TRUE(tier.Put("my key / with+specials", payload, 42).ok());
  EXPECT_TRUE(tier.Contains("my key / with+specials"));
  EXPECT_EQ(tier.Meta("my key / with+specials"), 42u);
  const SpillTier::Loaded loaded = tier.Get("my key / with+specials").value();
  EXPECT_EQ(loaded.payload, payload);
  EXPECT_EQ(loaded.meta, 42u);
  EXPECT_EQ(tier.stats().spills, 1u);
  EXPECT_EQ(tier.stats().reloads, 1u);
}

TEST(SpillTierTest, MissesAndErase) {
  SpillTier tier(FreshSpillDir("misses"), 0, "dataset");
  EXPECT_EQ(tier.Get("ghost").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(tier.Put("a", "x").ok());
  tier.Erase("a");
  EXPECT_FALSE(tier.Contains("a"));
  // Erase is supersession, not budget pressure: no pruned marker.
  EXPECT_FALSE(tier.WasPruned("a"));
  EXPECT_EQ(tier.Get("a").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, OverwriteReplacesPayloadAndAccounting) {
  SpillTier tier(FreshSpillDir("overwrite"), 0, "dataset");
  ASSERT_TRUE(tier.Put("k", std::string(1000, 'a'), 1).ok());
  const size_t bytes_before = tier.stats().bytes;
  ASSERT_TRUE(tier.Put("k", "tiny", 2).ok());
  EXPECT_EQ(tier.Get("k").value().payload, "tiny");
  EXPECT_EQ(tier.Meta("k"), 2u);
  EXPECT_EQ(tier.stats().entries, 1u);
  EXPECT_LT(tier.stats().bytes, bytes_before);
}

TEST(SpillTierTest, BudgetPrunesLeastRecentlyUsed) {
  // Each file is ~100 payload bytes + header; a 3-file budget.
  const std::string payload(100, 'p');
  SpillTier tier(FreshSpillDir("prune"), 3 * (payload.size() + 64), "dataset");
  ASSERT_TRUE(tier.Put("a", payload).ok());
  ASSERT_TRUE(tier.Put("b", payload).ok());
  ASSERT_TRUE(tier.Put("c", payload).ok());
  // Touch "a" so "b" is the LRU victim of the next Put.
  ASSERT_TRUE(tier.Get("a").ok());
  ASSERT_TRUE(tier.Put("d", payload).ok());
  EXPECT_TRUE(tier.Contains("a"));
  EXPECT_FALSE(tier.Contains("b"));
  EXPECT_TRUE(tier.WasPruned("b"));
  const Status pruned = tier.Get("b").status();
  EXPECT_EQ(pruned.code(), StatusCode::kExpired);
  EXPECT_NE(pruned.message().find("pruned"), std::string::npos);
  EXPECT_EQ(tier.stats().prunes, 1u);
  // Re-spilling a pruned key revives it.
  ASSERT_TRUE(tier.Put("b", payload).ok());
  EXPECT_FALSE(tier.WasPruned("b"));
}

TEST(SpillTierTest, OversizedPayloadRejectedAndMarkedPruned) {
  SpillTier tier(FreshSpillDir("oversize"), 64, "result");
  const Status status = tier.Put("big", std::string(1000, 'x'));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(tier.Contains("big"));
  EXPECT_TRUE(tier.WasPruned("big"));
  EXPECT_EQ(tier.Get("big").status().code(), StatusCode::kExpired);
}

TEST(SpillTierTest, RecoveryRestoresEntriesAndRecencyOrder) {
  const std::string dir = FreshSpillDir("recovery");
  const std::string payload(50, 'r');
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("cold", payload, 7).ok());
    ASSERT_TRUE(tier.Put("warm", payload, 8).ok());
    ASSERT_TRUE(tier.Put("hot", payload, 9).ok());
  }
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered, 3u);
  EXPECT_EQ(revived.Keys(),
            (std::vector<std::string>{"cold", "hot", "warm"}));
  EXPECT_EQ(revived.Meta("cold"), 7u);
  EXPECT_EQ(revived.MaxMeta(), 9u);
  EXPECT_EQ(revived.Get("warm").value().payload, payload);
  // Recency order survived via the manifest: under a budget that holds
  // only two files, the next Put prunes "cold" first.
  SpillTier bounded(dir, 3 * (payload.size() + 64), "dataset");
  ASSERT_TRUE(bounded.Put("new", payload, 10).ok());
  EXPECT_FALSE(bounded.Contains("cold"));
  EXPECT_TRUE(bounded.Contains("hot"));
  EXPECT_TRUE(bounded.Contains("warm"));
}

TEST(SpillTierTest, TruncatedFileSkippedAtRecoveryWithWarning) {
  const std::string dir = FreshSpillDir("truncated");
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("whole", std::string(100, 'w')).ok());
    ASSERT_TRUE(tier.Put("torn", std::string(100, 't')).ok());
  }
  // Truncate one spill file, as a crashed writer would.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("torn", 0) == 0) {
      fs::resize_file(entry.path(), 20);
    }
  }
  LogCapture log;
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered, 1u);
  EXPECT_EQ(revived.stats().skipped, 1u);
  EXPECT_TRUE(log.Contains("skipping spill file"));
  EXPECT_TRUE(revived.Contains("whole"));
  EXPECT_FALSE(revived.Contains("torn"));
  EXPECT_EQ(revived.Get("torn").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, BitRotDetectedByChecksumOnGet) {
  const std::string dir = FreshSpillDir("bitrot");
  SpillTier tier(dir, 0, "dataset");
  ASSERT_TRUE(tier.Put("k", std::string(100, 'k')).ok());
  // Flip a payload byte without changing the file size.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename() == "manifest") continue;
    std::fstream file(entry.path(), std::ios::in | std::ios::out |
                                        std::ios::binary);
    file.seekp(-1, std::ios::end);
    file.put('X');
  }
  LogCapture log;
  const Status status = tier.Get("k").status();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("corrupt"), std::string::npos);
  EXPECT_TRUE(log.Contains("checksum"));
  // The corrupt entry was dropped, not retried forever.
  EXPECT_FALSE(tier.Contains("k"));
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, StragglerFilesWithoutManifestAreRecovered) {
  const std::string dir = FreshSpillDir("straggler");
  {
    SpillTier tier(dir, 0, "dataset");
    ASSERT_TRUE(tier.Put("a", "payload-a", 1).ok());
    ASSERT_TRUE(tier.Put("b", "payload-b", 2).ok());
  }
  fs::remove(fs::path(dir) / "manifest");
  SpillTier revived(dir, 0, "dataset");
  EXPECT_EQ(revived.stats().recovered, 2u);
  EXPECT_EQ(revived.Get("a").value().payload, "payload-a");
  EXPECT_EQ(revived.Get("b").value().payload, "payload-b");
}

TEST(SpillTierTest, DisabledTierDegradesGracefully) {
  // A path that cannot be created: a regular file occupies the name.
  const std::string parent = FreshSpillDir("disabled");
  const std::string blocked = parent + "/occupied";
  std::ofstream(blocked) << "not a directory";
  LogCapture log;
  SpillTier tier(blocked + "/sub", 0, "dataset");
  EXPECT_FALSE(tier.enabled());
  EXPECT_EQ(tier.Put("k", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(SpillTierTest, LongKeysGetHashedFileNames) {
  SpillTier tier(FreshSpillDir("longkeys"), 0, "dataset");
  const std::string long_a(500, 'a');
  const std::string long_b = long_a + "b";  // same 160-char prefix
  ASSERT_TRUE(tier.Put(long_a, "payload-a").ok());
  ASSERT_TRUE(tier.Put(long_b, "payload-b").ok());
  EXPECT_EQ(tier.Get(long_a).value().payload, "payload-a");
  EXPECT_EQ(tier.Get(long_b).value().payload, "payload-b");
}

}  // namespace
}  // namespace cyclerank
