#include "platform/gateway.h"

#include <gtest/gtest.h>

#include "common/uuid.h"
#include "graph/graph_builder.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : store_(nullptr),
        gateway_(&store_, &AlgorithmRegistry::Default(),
                 PlatformOptions::WithWorkers(2, 123)) {
    GraphBuilder builder;
    builder.AddEdge("a", "b");
    builder.AddEdge("b", "a");
    builder.AddEdge("b", "c");
    builder.AddEdge("c", "a");
    (void)store_.PutDataset("tiny", builder.BuildShared().value());
  }

  QuerySet MakeQuerySet() {
    TaskBuilder builder;
    EXPECT_TRUE(builder.Add("tiny", "pagerank", "alpha=0.85").ok());
    EXPECT_TRUE(builder.Add("tiny", "cyclerank", "source=a, k=3").ok());
    EXPECT_TRUE(builder.Add("tiny", "pers_pagerank", "source=a").ok());
    return builder.Build();
  }

  Datastore store_;
  ApiGateway gateway_;
};

TEST_F(GatewayTest, SubmitReturnsUuidPermalink) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  EXPECT_TRUE(IsValidUuid(id));
}

TEST_F(GatewayTest, EndToEndCompletion) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  EXPECT_TRUE(status.done);
  EXPECT_EQ(status.completed, 3u);
  EXPECT_EQ(status.failed, 0u);
  const auto results = gateway_.GetResults(id).value();
  ASSERT_EQ(results.size(), 3u);
  for (const TaskResult& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.spec.ToString();
    EXPECT_FALSE(result.ranking.empty());
  }
}

TEST_F(GatewayTest, TaskIdsDeriveFromComparisonId) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  ASSERT_EQ(status.task_ids.size(), 3u);
  EXPECT_EQ(status.task_ids[0], id + "/0");
  EXPECT_EQ(status.task_ids[2], id + "/2");
}

TEST_F(GatewayTest, EmptyQuerySetRejected) {
  EXPECT_EQ(gateway_.SubmitQuerySet(QuerySet{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GatewayTest, UnknownAlgorithmRejectedSynchronously) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("tiny", "hits", "").ok());
  EXPECT_EQ(gateway_.SubmitQuerySet(builder.Build()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayTest, BadDatasetSurfacesAsFailedTask) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("ghost", "pagerank", "").ok());
  ASSERT_TRUE(builder.Add("tiny", "pagerank", "").ok());
  const std::string id = gateway_.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.completed, 1u);
  const auto results = gateway_.GetResults(id).value();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[1].status.ok());
}

TEST_F(GatewayTest, UnknownComparisonIdNotFound) {
  EXPECT_EQ(gateway_.GetStatus("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gateway_.GetResults("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gateway_.Cancel("bogus").code(), StatusCode::kNotFound);
  EXPECT_EQ(gateway_.WaitForCompletion("bogus", 0.1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayTest, DistinctSubmissionsGetDistinctIds) {
  const std::string a = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  const std::string b = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  EXPECT_NE(a, b);
}

TEST_F(GatewayTest, ManyConcurrentSubmissions) {
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(gateway_.SubmitQuerySet(MakeQuerySet()).value());
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(*gateway_.WaitForCompletion(id, 60.0));
    EXPECT_EQ(gateway_.GetStatus(id).value().completed, 3u);
  }
}

TEST_F(GatewayTest, ResultsBeforeCompletionSkipPendingTasks) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  // Immediately fetch: whatever is terminal is returned, no error.
  const auto results = gateway_.GetResults(id);
  ASSERT_TRUE(results.ok());
  EXPECT_LE(results->size(), 3u);
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
}

TEST_F(GatewayTest, BadAlgorithmMidSetRejectedWithoutSideEffects) {
  // Slot 2 of 3 names an unknown algorithm: the whole set is rejected
  // synchronously, nothing is tracked or enqueued, and the gateway keeps
  // serving later submissions (no task stuck kPending, nothing to hang on).
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("tiny", "pagerank", "").ok());
  ASSERT_TRUE(builder.Add("tiny", "no_such_algorithm", "").ok());
  ASSERT_TRUE(builder.Add("tiny", "cyclerank", "source=a, k=3").ok());
  EXPECT_EQ(gateway_.SubmitQuerySet(builder.Build()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gateway_.status_service().size(), 0u);
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
}

TEST_F(GatewayTest, PartialTrackFailureRollsBackInsteadOfHanging) {
  // Predict the gateway's next comparison id (deterministic uuid_seed) and
  // occupy one of its task ids, so Track fails mid-loop inside
  // SubmitQuerySet after task 0 was already tracked.
  UuidGenerator twin(123);
  const std::string next = twin.Generate();
  ASSERT_TRUE(gateway_.status_service().Track(next + "/1").ok());

  const auto submitted = gateway_.SubmitQuerySet(MakeQuerySet());
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kAlreadyExists);
  // Nothing was enqueued, so the comparison was erased, and the tracked
  // task 0 was rolled back to a terminal kFailed with a stored result —
  // before the fix it sat kPending forever and WaitForCompletion hung.
  EXPECT_EQ(gateway_.GetStatus(next).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(gateway_.status_service().GetState(next + "/0").value(),
            TaskState::kFailed);
  const TaskResult rolled_back = store_.GetResult(next + "/0").value();
  EXPECT_EQ(rolled_back.status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rolled_back.spec, MakeQuerySet().tasks[0]);
}

TEST_F(GatewayTest, SubmitAfterShutdownFailsWithoutStuckTasks) {
  UuidGenerator twin(123);
  const std::string next = twin.Generate();
  gateway_.Shutdown();
  const auto submitted = gateway_.SubmitQuerySet(MakeQuerySet());
  EXPECT_EQ(submitted.status().code(), StatusCode::kFailedPrecondition);
  // Enqueue failed on slot 0, so the comparison was erased and every
  // tracked task was rolled back to terminal kFailed — nothing can hang.
  EXPECT_EQ(gateway_.GetStatus(next).status().code(), StatusCode::kNotFound);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gateway_.status_service()
                  .GetState(next + "/" + std::to_string(i))
                  .value(),
              TaskState::kFailed);
  }
}

TEST_F(GatewayTest, ResubmittedQuerySetServedFromCache) {
  const std::string first_id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(first_id, 30.0));
  const auto first = gateway_.GetResults(first_id).value();
  const ResultCacheStats before = gateway_.result_cache().stats();

  const std::string second_id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(second_id, 30.0));
  const auto second = gateway_.GetResults(second_id).value();
  const ResultCacheStats after = gateway_.result_cache().stats();

  // All three tasks were cache hits, and the served rankings are
  // bit-identical to the originals under the resubmission's own task ids.
  EXPECT_EQ(after.hits, before.hits + 3);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].status.ok());
    EXPECT_EQ(second[i].ranking, first[i].ranking);
    EXPECT_EQ(second[i].task_id, second_id + "/" + std::to_string(i));
    EXPECT_EQ(second[i].spec, first[i].spec);
  }
}

TEST_F(GatewayTest, ThreadCountExcludedFromCacheKey) {
  TaskBuilder first;
  ASSERT_TRUE(first.Add("tiny", "pagerank", "alpha=0.85, threads=1").ok());
  const std::string a = gateway_.SubmitQuerySet(first.Build()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(a, 30.0));

  // Same computation, different execution knob and key order: still a hit.
  TaskBuilder second;
  ASSERT_TRUE(second.Add("tiny", "pagerank", "threads=4, alpha=0.85").ok());
  const ResultCacheStats before = gateway_.result_cache().stats();
  const std::string b = gateway_.SubmitQuerySet(second.Build()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(b, 30.0));
  EXPECT_EQ(gateway_.result_cache().stats().hits, before.hits + 1);
  EXPECT_EQ(gateway_.GetResults(b).value()[0].ranking,
            gateway_.GetResults(a).value()[0].ranking);
}

TEST_F(GatewayTest, NegativeWaitTimeoutRejected) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  EXPECT_EQ(gateway_.WaitForCompletion(id, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
}

TEST(GatewayOptionsTest, AdmissionLimitRejectsOversizedQuerySets) {
  Datastore store(nullptr);
  GraphBuilder builder;
  builder.AddEdge("a", "b");
  builder.AddEdge("b", "a");
  (void)store.PutDataset("tiny", builder.BuildShared().value());
  PlatformOptions options;
  options.num_workers = 2;
  options.uuid_seed = 17;
  options.max_tasks_per_submission = 2;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);

  TaskBuilder oversized;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(oversized
                    .Add("tiny", "pagerank", "seed=" + std::to_string(i))
                    .ok());
  }
  const auto rejected = gateway.SubmitQuerySet(oversized.Build());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("max_tasks_per_submission"),
            std::string::npos);
  // Rejection is synchronous and side-effect free.
  EXPECT_EQ(gateway.status_service().size(), 0u);

  // A set at the limit is admitted and completes.
  TaskBuilder at_limit;
  ASSERT_TRUE(at_limit.Add("tiny", "pagerank", "seed=0").ok());
  ASSERT_TRUE(at_limit.Add("tiny", "pagerank", "seed=1").ok());
  const std::string id = gateway.SubmitQuerySet(at_limit.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 30.0));
  EXPECT_EQ(gateway.GetStatus(id).value().completed, 2u);
}

TEST(GatewayOptionsTest, ConstructibleFromParsedOptionsString) {
  // A deployment configures the whole stack from one key=value string:
  // the same options object drives both the datastore's budgets and the
  // gateway's workers / ids / admission.
  const PlatformOptions options =
      PlatformOptions::FromString(
          "num_workers=2, uuid_seed=123, max_retained_results=8, "
          "result_cache_bytes=1m, max_tasks_per_submission=4")
          .value();
  Datastore store(nullptr, options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);
  EXPECT_EQ(gateway.num_workers(), 2u);
  EXPECT_EQ(gateway.options(), options);

  GraphBuilder builder;
  builder.AddEdge("a", "b");
  builder.AddEdge("b", "a");
  ASSERT_TRUE(store.PutDataset("tiny", builder.BuildShared().value()).ok());
  TaskBuilder tasks;
  ASSERT_TRUE(tasks.Add("tiny", "pagerank", "alpha=0.85").ok());
  const std::string id = gateway.SubmitQuerySet(tasks.Build()).value();
  EXPECT_TRUE(IsValidUuid(id));
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 30.0));
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
}

TEST(GatewayOptionsTest, ReboundDatasetNameNeverServesStaleCachedResults) {
  // The result cache is keyed by dataset *name*; when eviction + re-upload
  // binds a name to different content, cached results of the old binding
  // must be invalidated — not served as the new graph's rankings.
  const GraphPtr old_graph = ChainGraph(100);
  const GraphPtr new_graph = ChainGraph(120);
  PlatformOptions options;
  options.graph_store_bytes = new_graph->MemoryBytes();  // holds one graph
  options.num_workers = 1;
  options.uuid_seed = 29;
  Datastore store(nullptr, options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);
  ASSERT_TRUE(store.PutDataset("d", old_graph).ok());

  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d", "pagerank", "alpha=0.85").ok());
  const std::string first = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(first, 30.0));
  ASSERT_EQ(gateway.GetResults(first).value()[0].ranking.size(), 100u);

  // Evict 'd', then rebind the name to the 120-node graph.
  ASSERT_TRUE(store.PutDataset("filler", ChainGraph(100)).ok());
  ASSERT_EQ(store.GetDataset("d").status().code(), StatusCode::kExpired);
  ASSERT_TRUE(store.PutDataset("d", new_graph).ok());
  EXPECT_GT(gateway.result_cache().stats().invalidations, 0u);

  // The identical spec now computes on the new binding.
  const std::string second = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(second, 30.0));
  const auto results = gateway.GetResults(second).value();
  ASSERT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].ranking.size(), 120u);
}

TEST(GatewayOptionsTest, TaskKeyedWhileDatasetAbsentIsNeverCached) {
  // A task submitted while its dataset is absent runs un-keyed: if an
  // upload races in between submit and fetch, the (successful) result must
  // not enter the cache — the "absent" state is not a binding, and a later
  // submission while the name is evicted again must answer kExpired, not a
  // completed cache hit.
  const GraphPtr graph = ChainGraph(100);
  PlatformOptions options;
  options.graph_store_bytes = graph->MemoryBytes();  // holds one graph
  options.num_workers = 1;
  options.uuid_seed = 37;
  Datastore store(nullptr, options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);

  // Occupy the single worker so the next submission stays queued.
  ASSERT_TRUE(store.PutDataset("hot", graph).ok());
  TaskBuilder slow;
  ASSERT_TRUE(slow.Add("hot", "ppr_montecarlo", "source=0, walks=2000000").ok());
  const std::string slow_id = gateway.SubmitQuerySet(slow.Build()).value();

  // Queued while 'd' is absent; 'd' is uploaded before the task dispatches
  // (evicting "hot", whose pinned run still completes).
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("d", "pagerank", "alpha=0.85").ok());
  const std::string first = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(store.PutDataset("d", ChainGraph(100)).ok());
  ASSERT_TRUE(*gateway.WaitForCompletion(slow_id, 60.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(first, 60.0));
  ASSERT_TRUE(gateway.GetResults(first).value()[0].status.ok());

  // Evict 'd' again; the identical spec must fail kExpired — never be
  // served the raced run's result from the cache.
  ASSERT_TRUE(store.PutDataset("filler", ChainGraph(100)).ok());
  ASSERT_EQ(store.GetDataset("d").status().code(), StatusCode::kExpired);
  const std::string second = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(second, 60.0));
  const auto results = gateway.GetResults(second).value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kExpired);
}

TEST(GatewayCancelTest, CancelSkipsQueuedTasks) {
  Datastore store(nullptr);
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  (void)store.PutDataset("d", builder.BuildShared().value());
  // Single worker: queue many tasks, cancel while the first ones run.
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(1, 7));
  TaskBuilder tasks;
  for (int i = 0; i < 50; ++i) {
    // Distinct seeds keep the fingerprints distinct: identical tasks would
    // be coalesced by the single-flight layer and never sit in the queue,
    // which is exactly what this test needs them to do.
    ASSERT_TRUE(tasks.Add("d", "ppr_montecarlo",
                          "source=0, walks=200000, seed=" + std::to_string(i))
                    .ok());
  }
  const std::string id = gateway.SubmitQuerySet(tasks.Build()).value();
  ASSERT_TRUE(gateway.Cancel(id).ok());
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
  const ComparisonStatus status = gateway.GetStatus(id).value();
  EXPECT_TRUE(status.done);
  // At least some queued tasks observed the flag.
  EXPECT_GT(status.cancelled, 0u);
}

}  // namespace
}  // namespace cyclerank
