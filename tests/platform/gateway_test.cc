#include "platform/gateway.h"

#include <gtest/gtest.h>

#include "common/uuid.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : store_(nullptr),
        gateway_(&store_, &AlgorithmRegistry::Default(), /*num_workers=*/2,
                 /*uuid_seed=*/123) {
    GraphBuilder builder;
    builder.AddEdge("a", "b");
    builder.AddEdge("b", "a");
    builder.AddEdge("b", "c");
    builder.AddEdge("c", "a");
    (void)store_.PutDataset("tiny", builder.BuildShared().value());
  }

  QuerySet MakeQuerySet() {
    TaskBuilder builder;
    EXPECT_TRUE(builder.Add("tiny", "pagerank", "alpha=0.85").ok());
    EXPECT_TRUE(builder.Add("tiny", "cyclerank", "source=a, k=3").ok());
    EXPECT_TRUE(builder.Add("tiny", "pers_pagerank", "source=a").ok());
    return builder.Build();
  }

  Datastore store_;
  ApiGateway gateway_;
};

TEST_F(GatewayTest, SubmitReturnsUuidPermalink) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  EXPECT_TRUE(IsValidUuid(id));
}

TEST_F(GatewayTest, EndToEndCompletion) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  EXPECT_TRUE(status.done);
  EXPECT_EQ(status.completed, 3u);
  EXPECT_EQ(status.failed, 0u);
  const auto results = gateway_.GetResults(id).value();
  ASSERT_EQ(results.size(), 3u);
  for (const TaskResult& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.spec.ToString();
    EXPECT_FALSE(result.ranking.empty());
  }
}

TEST_F(GatewayTest, TaskIdsDeriveFromComparisonId) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  ASSERT_EQ(status.task_ids.size(), 3u);
  EXPECT_EQ(status.task_ids[0], id + "/0");
  EXPECT_EQ(status.task_ids[2], id + "/2");
}

TEST_F(GatewayTest, EmptyQuerySetRejected) {
  EXPECT_EQ(gateway_.SubmitQuerySet(QuerySet{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GatewayTest, UnknownAlgorithmRejectedSynchronously) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("tiny", "hits", "").ok());
  EXPECT_EQ(gateway_.SubmitQuerySet(builder.Build()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayTest, BadDatasetSurfacesAsFailedTask) {
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("ghost", "pagerank", "").ok());
  ASSERT_TRUE(builder.Add("tiny", "pagerank", "").ok());
  const std::string id = gateway_.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
  const ComparisonStatus status = gateway_.GetStatus(id).value();
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.completed, 1u);
  const auto results = gateway_.GetResults(id).value();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[1].status.ok());
}

TEST_F(GatewayTest, UnknownComparisonIdNotFound) {
  EXPECT_EQ(gateway_.GetStatus("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gateway_.GetResults("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gateway_.Cancel("bogus").code(), StatusCode::kNotFound);
  EXPECT_EQ(gateway_.WaitForCompletion("bogus", 0.1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayTest, DistinctSubmissionsGetDistinctIds) {
  const std::string a = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  const std::string b = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  EXPECT_NE(a, b);
}

TEST_F(GatewayTest, ManyConcurrentSubmissions) {
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(gateway_.SubmitQuerySet(MakeQuerySet()).value());
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(*gateway_.WaitForCompletion(id, 60.0));
    EXPECT_EQ(gateway_.GetStatus(id).value().completed, 3u);
  }
}

TEST_F(GatewayTest, ResultsBeforeCompletionSkipPendingTasks) {
  const std::string id = gateway_.SubmitQuerySet(MakeQuerySet()).value();
  // Immediately fetch: whatever is terminal is returned, no error.
  const auto results = gateway_.GetResults(id);
  ASSERT_TRUE(results.ok());
  EXPECT_LE(results->size(), 3u);
  ASSERT_TRUE(*gateway_.WaitForCompletion(id, 30.0));
}

TEST(GatewayCancelTest, CancelSkipsQueuedTasks) {
  Datastore store(nullptr);
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  (void)store.PutDataset("d", builder.BuildShared().value());
  // Single worker: queue many tasks, cancel while the first ones run.
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), 1, 7);
  TaskBuilder tasks;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tasks.Add("d", "ppr_montecarlo", "source=0, walks=200000").ok());
  }
  const std::string id = gateway.SubmitQuerySet(tasks.Build()).value();
  ASSERT_TRUE(gateway.Cancel(id).ok());
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
  const ComparisonStatus status = gateway.GetStatus(id).value();
  EXPECT_TRUE(status.done);
  // At least some queued tasks observed the flag.
  EXPECT_GT(status.cancelled, 0u);
}

}  // namespace
}  // namespace cyclerank
