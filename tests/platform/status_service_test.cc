#include "platform/status_service.h"

#include <thread>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(StatusServiceTest, TrackStartsPending) {
  StatusService status;
  ASSERT_TRUE(status.Track("t1").ok());
  EXPECT_EQ(status.GetState("t1").value(), TaskState::kPending);
  EXPECT_EQ(status.size(), 1u);
}

TEST(StatusServiceTest, DuplicateTrackRejected) {
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  EXPECT_EQ(status.Track("t").code(), StatusCode::kAlreadyExists);
}

TEST(StatusServiceTest, EmptyIdRejected) {
  StatusService status;
  EXPECT_EQ(status.Track("").code(), StatusCode::kInvalidArgument);
}

TEST(StatusServiceTest, StateTransitions) {
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  ASSERT_TRUE(status.SetState("t", TaskState::kFetching).ok());
  ASSERT_TRUE(status.SetState("t", TaskState::kRunning).ok());
  ASSERT_TRUE(status.SetState("t", TaskState::kCompleted).ok());
  EXPECT_EQ(status.GetState("t").value(), TaskState::kCompleted);
}

TEST(StatusServiceTest, TerminalStatesAreFinal) {
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  ASSERT_TRUE(status.SetState("t", TaskState::kCancelled).ok());
  EXPECT_EQ(status.SetState("t", TaskState::kRunning).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.GetState("t").value(), TaskState::kCancelled);
}

TEST(StatusServiceTest, UnknownTaskNotFound) {
  StatusService status;
  EXPECT_EQ(status.GetState("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(status.SetState("x", TaskState::kRunning).code(),
            StatusCode::kNotFound);
}

TEST(StatusServiceTest, GetStatesBatch) {
  StatusService status;
  ASSERT_TRUE(status.Track("a").ok());
  ASSERT_TRUE(status.Track("b").ok());
  ASSERT_TRUE(status.SetState("b", TaskState::kRunning).ok());
  const auto states = status.GetStates({"a", "b"}).value();
  EXPECT_EQ(states[0], TaskState::kPending);
  EXPECT_EQ(states[1], TaskState::kRunning);
  EXPECT_FALSE(status.GetStates({"a", "zzz"}).ok());
}

TEST(StatusServiceTest, WaitUntilTerminalTimesOut) {
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  const auto done = status.WaitUntilTerminal({"t"}, 0.05);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST(StatusServiceTest, WaitUntilTerminalWakesOnCompletion) {
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  std::thread setter([&status] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    (void)status.SetState("t", TaskState::kCompleted);
  });
  const auto done = status.WaitUntilTerminal({"t"}, 5.0);
  setter.join();
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(*done);
}

TEST(StatusServiceTest, WaitValidatesIdsUpFront) {
  StatusService status;
  EXPECT_EQ(status.WaitUntilTerminal({"ghost"}, 0.01).status().code(),
            StatusCode::kNotFound);
}

TEST(StatusServiceTest, NegativeTimeoutRejected) {
  // Before the fix every `timeout_seconds <= 0` silently meant "wait
  // forever", so a caller's sign bug became an infinite hang. Only exactly
  // 0 blocks indefinitely now.
  StatusService status;
  ASSERT_TRUE(status.Track("t").ok());
  EXPECT_EQ(status.WaitUntilTerminal({"t"}, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(status.WaitUntilTerminal({"t"}, -0.001).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusServiceTest, WaitOnMultipleTasks) {
  StatusService status;
  ASSERT_TRUE(status.Track("a").ok());
  ASSERT_TRUE(status.Track("b").ok());
  ASSERT_TRUE(status.SetState("a", TaskState::kCompleted).ok());
  // b still pending -> timeout.
  EXPECT_FALSE(*status.WaitUntilTerminal({"a", "b"}, 0.05));
  ASSERT_TRUE(status.SetState("b", TaskState::kFailed).ok());
  EXPECT_TRUE(*status.WaitUntilTerminal({"a", "b"}, 0.05));
}

}  // namespace
}  // namespace cyclerank
