// The fault matrix of PR 8: every disk failure the storage stack promises
// to survive, exercised end to end through an injected `Env` — plus the
// scheduler's overload control (deadlines, bounded admission), which is
// the same robustness story one layer up. The contract under test, from
// ISSUE.md: never crash, never serve a wrong or partial result, answer a
// deterministic Status, and recover when the fault clears.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "graph/graph_builder.h"
#include "platform/datastore.h"
#include "platform/gateway.h"
#include "platform/params.h"
#include "platform/registry.h"
#include "platform/spill_tier.h"
#include "platform/task.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

using Kind = EnvFault::Kind;

/// Spill-tier options wired to `env` with test-friendly failure knobs:
/// synchronous puts, no retry sleep, a probe on every post-trip operation.
SpillTierOptions FaultyTierOptions(Env* env, int retry_limit) {
  SpillTierOptions options;
  options.env = env;
  options.retry_limit = retry_limit;
  options.retry_backoff_ms = 0;
  options.breaker_probe_ms = 0;
  return options;
}

// ------------------------------------------------- retries (transient) --

TEST(FaultInjectionTest, TransientWriteFaultIsRetriedInvisibly) {
  FaultInjectingEnv env(Env::Default());
  SpillTier tier(FreshSpillDir("fi_transient_write"),
                 FaultyTierOptions(&env, /*retry_limit=*/3), "dataset");
  // The first data-file write fails once with EIO; the retry must absorb
  // it without the caller ever noticing. (".spill" scopes the fault to
  // data files — the manifest is best-effort and unscheduled here.)
  env.AddFault({Kind::kTransient, EnvOp::kWrite, ".spill", 1});

  ASSERT_TRUE(tier.Put("k", "payload-bytes", 7).ok());
  EXPECT_EQ(tier.stats().retries, 1u);
  EXPECT_EQ(tier.stats().retry_exhausted, 0u);
  EXPECT_EQ(tier.stats().breaker_trips, 0u);
  EXPECT_FALSE(tier.stats().breaker_open);

  const auto loaded = tier.Get("k");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "payload-bytes");
  EXPECT_EQ(loaded->meta, 7u);
}

TEST(FaultInjectionTest, TransientReadFaultIsRetriedInvisibly) {
  FaultInjectingEnv env(Env::Default());
  SpillTier tier(FreshSpillDir("fi_transient_read"),
                 FaultyTierOptions(&env, 3), "dataset");
  ASSERT_TRUE(tier.Put("k", "payload-bytes").ok());
  env.AddFault({Kind::kTransient, EnvOp::kRead, ".spill", 1});

  const auto loaded = tier.Get("k");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "payload-bytes");
  EXPECT_GE(tier.stats().retries, 1u);
  EXPECT_EQ(tier.stats().skipped_corrupt_files, 0u);  // flaky ≠ corrupt
}

TEST(FaultInjectionTest, FailedReadKeepsTheEntryIntact) {
  FaultInjectingEnv env(Env::Default());
  // No retries: the first injected read error surfaces to the caller.
  SpillTier tier(FreshSpillDir("fi_read_keeps"), FaultyTierOptions(&env, 0),
                 "dataset");
  ASSERT_TRUE(tier.Put("k", "precious").ok());
  env.AddFault({Kind::kTransient, EnvOp::kRead, ".spill", 1});

  EXPECT_FALSE(tier.Get("k").ok());  // error surfaced...
  EXPECT_TRUE(tier.Contains("k"));   // ...but the entry was not destroyed
  EXPECT_EQ(tier.stats().skipped_corrupt_files, 0u);

  // The disk "heals" (fault was one-shot); with breaker_probe_ms=0 the
  // next read is admitted as a probe and the data is still all there.
  const auto loaded = tier.Get("k");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "precious");
}

// ---------------------------------------- circuit breaker (persistent) --

TEST(FaultInjectionTest, PersistentFailureTripsBreakerAndFastFails) {
  FaultInjectingEnv env(Env::Default());
  SpillTierOptions options = FaultyTierOptions(&env, /*retry_limit=*/2);
  options.breaker_probe_ms = 60'000;  // no probe within this test
  SpillTier tier(FreshSpillDir("fi_breaker_trip"), options, "dataset");
  ASSERT_TRUE(tier.Put("a", "alpha").ok());

  env.AddFault({Kind::kPersistent, EnvOp::kWrite, ".spill", 1});
  const Status failed = tier.Put("b", "bravo");
  EXPECT_EQ(failed.code(), StatusCode::kIOError);  // the injected error
  {
    const SpillTierStats stats = tier.stats();
    EXPECT_EQ(stats.retries, 2u);          // both retries attempted
    EXPECT_EQ(stats.retry_exhausted, 1u);  // ...and exhausted
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_TRUE(stats.breaker_open);
  }

  // While open, nothing touches the device: puts and disk reads fast-fail
  // kUnavailable with zero Env calls.
  const uint64_t ops_before = env.stats().ops;
  EXPECT_EQ(tier.Put("c", "charlie").code(), StatusCode::kUnavailable);
  EXPECT_EQ(tier.Get("a").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.stats().ops, ops_before);
  EXPECT_GE(tier.stats().breaker_rejects, 2u);

  // Degraded mode is documented drop-on-evict, never a wrong answer: the
  // keys whose bytes were lost answer "stored and then dropped".
  EXPECT_TRUE(tier.WasPruned("b"));
  EXPECT_TRUE(tier.WasPruned("c"));
  EXPECT_EQ(tier.Get("b").status().code(), StatusCode::kExpired);
  EXPECT_EQ(tier.Get("c").status().code(), StatusCode::kExpired);
}

TEST(FaultInjectionTest, BreakerProbeRecoversOnceTheFaultClears) {
  FaultInjectingEnv env(Env::Default());
  SpillTier tier(FreshSpillDir("fi_breaker_heal"),
                 FaultyTierOptions(&env, /*retry_limit=*/0), "dataset");
  ASSERT_TRUE(tier.Put("a", "alpha").ok());

  env.AddFault({Kind::kPersistent, EnvOp::kWrite, ".spill", 1});
  EXPECT_FALSE(tier.Put("b", "bravo").ok());
  EXPECT_TRUE(tier.stats().breaker_open);

  env.ClearFaults();  // the disk heals
  // breaker_probe_ms=0: the very next operation goes through as a probe,
  // succeeds, and closes the breaker — full service resumes.
  const auto loaded = tier.Get("a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "alpha");
  {
    const SpillTierStats stats = tier.stats();
    EXPECT_FALSE(stats.breaker_open);
    EXPECT_GE(stats.breaker_probes, 1u);
    EXPECT_EQ(stats.breaker_recoveries, 1u);
  }
  ASSERT_TRUE(tier.Put("c", "charlie").ok());
  EXPECT_EQ(tier.Get("c")->payload, "charlie");
}

// ------------------------------------------- write-behind flush errors --

TEST(FaultInjectionTest, FlushThreadFailureSurfacesFromFlush) {
  FaultInjectingEnv env(Env::Default());
  SpillTierOptions options = FaultyTierOptions(&env, /*retry_limit=*/0);
  options.write_behind_bytes = 1 << 20;
  SpillTier tier(FreshSpillDir("fi_flush_error"), options, "dataset");

  env.AddFault({Kind::kPersistent, EnvOp::kWrite, ".spill", 1});
  ASSERT_TRUE(tier.Put("k", "doomed-bytes").ok());  // buffered fine

  // The loss happened on the flush thread; Flush() is where it surfaces.
  const Status flushed = tier.Flush();
  EXPECT_FALSE(flushed.ok());
  EXPECT_NE(flushed.message().find("never reached disk"), std::string::npos)
      << flushed.message();
  EXPECT_GE(tier.stats().flush_failures, 1u);

  // The key answers "stored and dropped" — a clean, deterministic miss.
  EXPECT_TRUE(tier.WasPruned("k"));
  EXPECT_EQ(tier.Get("k").status().code(), StatusCode::kExpired);

  // The error is reported once, then cleared.
  EXPECT_TRUE(tier.Flush().ok());

  // After healing, write-behind service resumes end to end.
  env.ClearFaults();
  ASSERT_TRUE(tier.Put("k2", "survives").ok());
  ASSERT_TRUE(tier.Flush().ok());
  EXPECT_EQ(tier.Get("k2")->payload, "survives");
}

TEST(FaultInjectionTest, DatastoreFlushReportsDemotionLosses) {
  FaultInjectingEnv env(Env::Default());
  PlatformOptions options;
  options.spill_dir = FreshSpillDir("fi_datastore_flush");
  options.graph_store_bytes = ChainGraph(100)->MemoryBytes();
  options.spill_retry_limit = 0;
  options.spill_retry_backoff_ms = 0;
  options.spill_breaker_probe_ms = 0;
  Datastore store(nullptr, options, &env);

  ASSERT_TRUE(store.PutDataset("a", ChainGraph(100)).ok());
  // Break the dataset tier's data-file writes, then force a demotion.
  env.AddFault({Kind::kPersistent, EnvOp::kWrite, "datasets", 1});
  ASSERT_TRUE(store.PutDataset("b", ChainGraph(100)).ok());  // "a" → disk

  // The write-behind demotion of "a" could not reach disk: Flush() says
  // so with a real Status instead of pretending durability.
  const Status flushed = store.Flush();
  EXPECT_FALSE(flushed.ok());
  EXPECT_GE(store.SpillStats().datasets.flush_failures, 1u);

  // Degradation, not corruption: "a" is a clean miss, "b" still serves.
  EXPECT_FALSE(store.GetDataset("a").ok());
  EXPECT_TRUE(store.GetDataset("b").ok());

  // The disk heals; later demotions flow to disk again and reload.
  env.ClearFaults();
  ASSERT_TRUE(store.PutDataset("c", ChainGraph(100)).ok());  // "b" → disk
  EXPECT_TRUE(store.Flush().ok());
  EXPECT_TRUE(store.GetDataset("b").ok());  // reloaded from disk
}

// ------------------------------------------------ crash-recovery tests --

TEST(FaultInjectionTest, EnospcMidRunRestartRecoversSurvivors) {
  const std::string dir = FreshSpillDir("fi_enospc_restart");
  {
    FaultInjectingEnv env(Env::Default());
    SpillTierOptions options = FaultyTierOptions(&env, 0);
    options.breaker_probe_ms = 60'000;
    SpillTier tier(dir, options, "dataset");
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(tier.Put("k" + std::to_string(i),
                           "payload-" + std::to_string(i))
                      .ok());
    }
    env.AddFault({Kind::kPersistent, EnvOp::kWrite, ".spill", 1});  // ENOSPC
    EXPECT_FALSE(tier.Put("k5", "payload-5").ok());
  }  // process "dies" mid-incident; only the directory survives

  // Restart against a healthy disk: every pre-incident entry is back,
  // bit-identical; the write the disk rejected is a clean miss.
  SpillTier revived(dir, SpillTierOptions{}, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 5u);
  EXPECT_EQ(revived.stats().skipped_corrupt_files, 0u);
  for (int i = 0; i < 5; ++i) {
    const auto loaded = revived.Get("k" + std::to_string(i));
    ASSERT_TRUE(loaded.ok()) << i;
    EXPECT_EQ(loaded->payload, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(revived.Get("k5").status().code(), StatusCode::kNotFound);
}

TEST(FaultInjectionTest, CrashAtEveryOperationRecoversCleanly) {
  // Sweep the crash point across every Env call of a fixed Put sequence:
  // wherever the "power cut" lands — mid tmp write (torn file), at the
  // rename, in the manifest, even inside the constructor's recovery scan
  // — the restart must come up, serve every acknowledged Put
  // bit-identically, and answer a clean miss for the rest.
  bool swept_past_the_end = false;
  for (uint64_t nth = 1; nth <= 24 && !swept_past_the_end; ++nth) {
    SCOPED_TRACE("crash at env call #" + std::to_string(nth));
    const std::string dir =
        FreshSpillDir("fi_crash_sweep_" + std::to_string(nth));
    std::map<std::string, std::string> acknowledged;
    {
      FaultInjectingEnv env(Env::Default());
      env.AddFault({Kind::kCrashPoint, EnvOp::kAny, "", nth});
      SpillTierOptions options = FaultyTierOptions(&env, 0);
      options.breaker_probe_ms = 60'000;
      SpillTier tier(dir, options, "dataset");
      for (int i = 0; i < 4; ++i) {
        const std::string key = "k" + std::to_string(i);
        const std::string payload =
            "payload-" + std::to_string(i) + "-" + std::to_string(nth);
        if (tier.Put(key, payload).ok()) acknowledged[key] = payload;
      }
      swept_past_the_end = !env.crashed();
    }
    // Restart on the healthy disk.
    SpillTier revived(dir, SpillTierOptions{}, "dataset");
    for (int i = 0; i < 4; ++i) {
      const std::string key = "k" + std::to_string(i);
      const auto loaded = revived.Get(key);
      const auto it = acknowledged.find(key);
      if (it != acknowledged.end()) {
        // Acknowledged before the crash ⇒ durable and bit-identical.
        ASSERT_TRUE(loaded.ok()) << key << ": " << loaded.status().message();
        EXPECT_EQ(loaded->payload, it->second);
      } else {
        // Never acknowledged ⇒ a clean miss, never torn bytes.
        EXPECT_FALSE(loaded.ok()) << key;
      }
    }
  }
  EXPECT_TRUE(swept_past_the_end);  // the sweep covered every call site
}

TEST(FaultInjectionTest, TornTmpWriteNeverBecomesVisible) {
  const std::string dir = FreshSpillDir("fi_torn_tmp");
  {
    FaultInjectingEnv env(Env::Default());
    SpillTier tier(dir, FaultyTierOptions(&env, 0), "dataset");
    env.AddFault({Kind::kTornWrite, EnvOp::kWrite, ".spill", 1});
    EXPECT_FALSE(tier.Put("k", "half-of-me-reaches-disk").ok());
  }
  // The torn bytes went to the ".spill.tmp" name, which recovery ignores;
  // the entry was never renamed into visibility.
  SpillTier revived(dir, SpillTierOptions{}, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 0u);
  EXPECT_EQ(revived.stats().skipped_corrupt_files, 0u);
  EXPECT_FALSE(revived.Get("k").ok());
}

TEST(FaultInjectionTest, TornManifestWriteDoesNotLoseEntries) {
  const std::string dir = FreshSpillDir("fi_torn_mf");
  {
    FaultInjectingEnv env(Env::Default());
    SpillTier tier(dir, FaultyTierOptions(&env, 0), "dataset");
    env.AddFault({Kind::kTornWrite, EnvOp::kWrite, "manifest", 1});
    // The data file lands; only the (best-effort) manifest write tears.
    ASSERT_TRUE(tier.Put("k", "manifest-independent").ok());
  }
  // Recovery treats the manifest as advisory: the unlisted-but-valid file
  // is appended as a straggler.
  SpillTier revived(dir, SpillTierOptions{}, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, 1u);
  EXPECT_EQ(revived.Get("k")->payload, "manifest-independent");
}

TEST(FaultInjectionTest, RenameFailureRetriesTheWholeWriteUnit) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshSpillDir("fi_rename_retry");
  SpillTier tier(dir, FaultyTierOptions(&env, /*retry_limit=*/2), "dataset");
  env.AddFault({Kind::kTransient, EnvOp::kRename, ".spill", 1});

  // tmp write succeeds, the rename fails once: the retry re-runs the
  // whole tmp-write + rename unit and the Put still succeeds.
  ASSERT_TRUE(tier.Put("k", "renamed-on-retry").ok());
  EXPECT_GE(tier.stats().retries, 1u);
  EXPECT_EQ(tier.Get("k")->payload, "renamed-on-retry");
}

// --------------------------------------------- seeded random churn -----

/// Seed for the churn sweep: `tools/verify.sh --faults` sweeps it via
/// CYCLERANK_FAULT_SEED; unset, the suite runs one fixed seed.
uint64_t ChurnSeed() {
  const char* raw = std::getenv("CYCLERANK_FAULT_SEED");
  if (raw == nullptr) return 1;
  return static_cast<uint64_t>(std::strtoull(raw, nullptr, 10));
}

TEST(FaultInjectionTest, RandomFaultChurnNeverServesWrongBytes) {
  const uint64_t seed = ChurnSeed();
  SCOPED_TRACE("CYCLERANK_FAULT_SEED=" + std::to_string(seed));
  FaultInjectingEnv env(Env::Default(), seed);
  const std::string dir = FreshSpillDir("fi_churn");
  SpillTier tier(dir, FaultyTierOptions(&env, /*retry_limit=*/1), "dataset");
  env.SetRandomFaultRate(0.25);

  // `truth` holds, per key, the last payload whose Put was acknowledged —
  // the only bytes a later Get is allowed to serve.
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i % 17);
    const std::string payload =
        "payload-" + std::to_string(i) + "-seed" + std::to_string(seed);
    if (tier.Put(key, payload).ok()) truth[key] = payload;
    const auto got = tier.Get(key);
    if (got.ok() && truth.count(key) != 0) {
      ASSERT_EQ(got->payload, truth[key]) << "iteration " << i;
    }
  }
  // Failed writes are whole-unit failures (tmp + rename), never torn
  // visible files — nothing should ever have read as corrupt.
  EXPECT_EQ(tier.stats().skipped_corrupt_files, 0u);

  env.ClearFaults();  // the disk heals; probes close the breaker
  for (const auto& [key, payload] : truth) {
    const auto got = tier.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().message();
    EXPECT_EQ(got->payload, payload);
  }

  // And a restart serves exactly the acknowledged state, bit-identically.
  SpillTier revived(dir, SpillTierOptions{}, "dataset");
  EXPECT_EQ(revived.stats().recovered_files, truth.size());
  EXPECT_EQ(revived.stats().skipped_corrupt_files, 0u);
  for (const auto& [key, payload] : truth) {
    EXPECT_EQ(revived.Get(key)->payload, payload) << key;
  }
}

// ------------------------------------------------- overload control ----

/// A latch the gated algorithm blocks on, so tests control exactly when
/// the single worker becomes free.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool open_ = false;
};

/// Blocks on the gate, then returns a fixed ranking; counts invocations so
/// tests can prove a shed task never touched the kernel.
class GatedAlgorithm final : public RelevanceAlgorithm {
 public:
  GatedAlgorithm(std::shared_ptr<Gate> gate,
                 std::shared_ptr<std::atomic<int>> runs)
      : gate_(std::move(gate)), runs_(std::move(runs)) {}
  std::string_view name() const override { return "gated"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph&,
                         const AlgorithmRequest&) const override {
    gate_->Wait();
    runs_->fetch_add(1, std::memory_order_relaxed);
    return RankedList{{0, 1.0}};
  }

 private:
  std::shared_ptr<Gate> gate_;
  std::shared_ptr<std::atomic<int>> runs_;
};

class OverloadControlTest : public ::testing::Test {
 protected:
  OverloadControlTest()
      : gate_(std::make_shared<Gate>()),
        runs_(std::make_shared<std::atomic<int>>(0)),
        store_(nullptr) {
    EXPECT_TRUE(
        registry_.Register(std::make_shared<GatedAlgorithm>(gate_, runs_))
            .ok());
    GraphBuilder builder;
    builder.AddEdge("a", "b");
    builder.AddEdge("b", "a");
    (void)store_.PutDataset("tiny", builder.BuildShared().value());
  }

  /// One gated task; `params` varies the fingerprint (alpha) and carries
  /// the deadline under test.
  QuerySet One(const std::string& params) {
    TaskBuilder builder;
    EXPECT_TRUE(builder.Add("tiny", "gated", params).ok());
    return builder.Build();
  }

  /// Polls until the comparison's only task is running (inside the gate).
  void WaitUntilRunning(ApiGateway& gateway, const std::string& id) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const ComparisonStatus status = gateway.GetStatus(id).value();
      if (!status.states.empty() && status.states[0] == TaskState::kRunning) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "task " << id << " never started running";
  }

  static PlatformOptions OneWorker() {
    return PlatformOptions::WithWorkers(1, /*uuid_seed=*/7);
  }

  /// Opens the gate when destroyed, so an early ASSERT exit can never
  /// deadlock the gateway's drain-on-destruction. Declare *after* the
  /// gateway: destructors run in reverse, opening the gate first.
  struct GateOpener {
    std::shared_ptr<Gate> gate;
    ~GateOpener() { gate->Open(); }
  };

  std::shared_ptr<Gate> gate_;
  std::shared_ptr<std::atomic<int>> runs_;
  AlgorithmRegistry registry_;
  Datastore store_;
};

TEST_F(OverloadControlTest, QueuedTaskPastItsDeadlineFastFails) {
  ApiGateway gateway(&store_, &registry_, OneWorker());
  GateOpener opener{gate_};

  const std::string blocker = gateway.SubmitQuerySet(One("")).value();
  WaitUntilRunning(gateway, blocker);
  // The worker is held; this task's 30 ms expire while it waits in queue.
  const std::string doomed =
      gateway.SubmitQuerySet(One("deadline_ms=30, alpha=0.5")).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate_->Open();

  ASSERT_TRUE(*gateway.WaitForCompletion(blocker, 30.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(doomed, 30.0));
  const ComparisonStatus status = gateway.GetStatus(doomed).value();
  EXPECT_EQ(status.failed, 1u);
  const auto results = gateway.GetResults(doomed).value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
  // The shed task never touched the kernel: only the blocker ran.
  EXPECT_EQ(runs_->load(), 1);
}

TEST_F(OverloadControlTest, ExpiredFollowerRefusesEvenAReadyResult) {
  ApiGateway gateway(&store_, &registry_, OneWorker());
  GateOpener opener{gate_};

  const std::string blocker =
      gateway.SubmitQuerySet(One("alpha=0.9")).value();
  WaitUntilRunning(gateway, blocker);
  // Leader and follower share a fingerprint (deadline_ms is execution-only
  // and excluded); the follower's own deadline expires while coalesced.
  const std::string leader =
      gateway.SubmitQuerySet(One("alpha=0.5")).value();
  const std::string follower =
      gateway.SubmitQuerySet(One("alpha=0.5, deadline_ms=30")).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate_->Open();

  ASSERT_TRUE(*gateway.WaitForCompletion(leader, 30.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(follower, 30.0));
  // The leader's result is real — but the follower's requester had given
  // up, so deadline semantics win over coalescing luck.
  EXPECT_TRUE(gateway.GetResults(leader).value()[0].status.ok());
  EXPECT_EQ(gateway.GetResults(follower).value()[0].status.code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(OverloadControlTest, DeadlineExceededLeaderPromotesItsFollower) {
  ApiGateway gateway(&store_, &registry_, OneWorker());
  GateOpener opener{gate_};

  const std::string blocker =
      gateway.SubmitQuerySet(One("alpha=0.9")).value();
  WaitUntilRunning(gateway, blocker);
  const std::string leader =
      gateway.SubmitQuerySet(One("alpha=0.5, deadline_ms=30")).value();
  const std::string follower =
      gateway.SubmitQuerySet(One("alpha=0.5")).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate_->Open();

  ASSERT_TRUE(*gateway.WaitForCompletion(leader, 30.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(follower, 30.0));
  // The leader was shed — but its deadline, not the follower's: the
  // follower is promoted to a fresh leader and completes for real.
  EXPECT_EQ(gateway.GetResults(leader).value()[0].status.code(),
            StatusCode::kDeadlineExceeded);
  const auto promoted = gateway.GetResults(follower).value();
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_TRUE(promoted[0].status.ok()) << promoted[0].status.message();
  EXPECT_FALSE(promoted[0].ranking.empty());
}

TEST_F(OverloadControlTest, AdmissionLimitRejectsSynchronously) {
  PlatformOptions options = OneWorker();
  options.admission_queue_limit = 1;
  ApiGateway gateway(&store_, &registry_, options);
  GateOpener opener{gate_};

  const std::string blocker =
      gateway.SubmitQuerySet(One("alpha=0.9")).value();
  WaitUntilRunning(gateway, blocker);
  // One queue slot: the first waiter is admitted, the second answers
  // kUnavailable *now* — no parked task, no eventual timeout.
  const std::string queued =
      gateway.SubmitQuerySet(One("alpha=0.1")).value();
  const auto rejected = gateway.SubmitQuerySet(One("alpha=0.2"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // Followers occupy no worker and no queue slot: an enqueue identical to
  // the queued leader coalesces instead of being rejected.
  const std::string coalesced =
      gateway.SubmitQuerySet(One("alpha=0.1")).value();
  gate_->Open();
  ASSERT_TRUE(*gateway.WaitForCompletion(queued, 30.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(coalesced, 30.0));
  EXPECT_TRUE(gateway.GetResults(queued).value()[0].status.ok());
  EXPECT_TRUE(gateway.GetResults(coalesced).value()[0].status.ok());
}

TEST_F(OverloadControlTest, DefaultDeadlineAppliesAndZeroOptsOut) {
  PlatformOptions options = OneWorker();
  options.default_deadline_ms = 30;
  ApiGateway gateway(&store_, &registry_, options);
  GateOpener opener{gate_};

  const std::string blocker =
      gateway.SubmitQuerySet(One("alpha=0.9, deadline_ms=0")).value();
  WaitUntilRunning(gateway, blocker);
  const std::string defaulted =
      gateway.SubmitQuerySet(One("alpha=0.1")).value();  // inherits 30 ms
  const std::string opted_out =
      gateway.SubmitQuerySet(One("alpha=0.2, deadline_ms=0")).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate_->Open();

  ASSERT_TRUE(*gateway.WaitForCompletion(defaulted, 30.0));
  ASSERT_TRUE(*gateway.WaitForCompletion(opted_out, 30.0));
  EXPECT_EQ(gateway.GetResults(defaulted).value()[0].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(gateway.GetResults(opted_out).value()[0].status.ok());
}

TEST_F(OverloadControlTest, MalformedDeadlineRejectedSynchronously) {
  ApiGateway gateway(&store_, &registry_, OneWorker());
  GateOpener opener{gate_};

  EXPECT_FALSE(gateway.SubmitQuerySet(One("deadline_ms=soon")).ok());
  EXPECT_EQ(gateway.SubmitQuerySet(One("deadline_ms=-5")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OverloadFingerprintTest, DeadlineIsExecutionOnlyInFingerprints) {
  ParamMap with;
  with.Set("alpha", "0.5");
  with.Set("deadline_ms", "250");
  ParamMap without;
  without.Set("alpha", "0.5");
  // A deadline decides *whether* the kernel runs, never what it computes:
  // it must not split (or collide) cache entries.
  EXPECT_EQ(TaskFingerprint("d", "pagerank", with),
            TaskFingerprint("d", "pagerank", without));
}

}  // namespace
}  // namespace cyclerank
