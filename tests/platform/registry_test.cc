#include "platform/registry.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

/// Toy algorithm proving the "new algorithms can be easily added" claim.
class DegreeRank final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "degreerank"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    std::vector<double> scores(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) scores[u] = g.InDegree(u);
    RankingOptions options;
    options.top_k = request.top_k;
    options.drop_zeros = false;
    return ScoresToRankedList(scores, options);
  }
};

TEST(RegistryTest, DefaultContainsAllBuiltIns) {
  auto& registry = AlgorithmRegistry::Default();
  EXPECT_GE(registry.size(), 9u);
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    EXPECT_TRUE(
        registry.Find(std::string(AlgorithmKindToString(kind))).ok())
        << AlgorithmKindToString(kind);
  }
}

TEST(RegistryTest, FindResolvesAliases) {
  auto& registry = AlgorithmRegistry::Default();
  const auto ppr = registry.Find("ppr");
  ASSERT_TRUE(ppr.ok());
  EXPECT_EQ((*ppr)->name(), "pers_pagerank");
}

TEST(RegistryTest, UnknownAlgorithmNotFound) {
  EXPECT_EQ(AlgorithmRegistry::Default().Find("hits").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, RegisterCustomAlgorithm) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<DegreeRank>()).ok());
  const auto found = registry.Find("degreerank");
  ASSERT_TRUE(found.ok());

  GraphBuilder builder;
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  const RankedList ranking = (*found)->Run(g, AlgorithmRequest{}).value();
  EXPECT_EQ(ranking.front().node, 0u);  // highest in-degree first
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  AlgorithmRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<DegreeRank>()).ok());
  EXPECT_EQ(registry.Register(std::make_shared<DegreeRank>()).code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, NullRegistrationRejected) {
  AlgorithmRegistry registry;
  EXPECT_EQ(registry.Register(nullptr).code(), StatusCode::kInvalidArgument);
}

/// DegreeRank wearing a built-in's alias as its name.
class AliasSquatter final : public RelevanceAlgorithm {
 public:
  explicit AliasSquatter(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph&,
                         const AlgorithmRequest&) const override {
    return RankedList{};
  }

 private:
  std::string name_;
};

TEST(RegistryTest, BuiltInAliasNamesRejected) {
  // "PR" would exact-match in Find while TaskFingerprint canonicalizes it
  // to "pagerank" — the result cache would then serve one algorithm's
  // ranking as the other's. Alias and case-variant names of built-ins are
  // therefore rejected at registration; unrelated names stay fine.
  AlgorithmRegistry registry;
  for (const std::string squat : {"PR", "ppr", "cr", "PageRank"}) {
    EXPECT_EQ(registry.Register(std::make_shared<AliasSquatter>(squat)).code(),
              StatusCode::kInvalidArgument)
        << squat;
  }
  EXPECT_TRUE(
      registry.Register(std::make_shared<AliasSquatter>("myalgo")).ok());
}

TEST(RegistryTest, NamesSorted) {
  AlgorithmRegistry registry;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    ASSERT_TRUE(registry.Register(MakeAlgorithm(kind)).ok());
  }
  const auto names = registry.Names();
  ASSERT_EQ(names.size(), AllAlgorithmKinds().size());
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

}  // namespace
}  // namespace cyclerank
