#include "graph/scc.h"

#include <set>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_builder.h"
#include "graph/traversal.h"

namespace cyclerank {
namespace {

TEST(SccTest, SingleCycleIsOneComponent) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_TRUE(InSameScc(scc, 0, 2));
}

TEST(SccTest, DagHasSingletonComponents) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_FALSE(InSameScc(scc, 0, 1));
}

TEST(SccTest, TwoCyclesJoinedByOneWayEdge) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);  // bridge
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 2);
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_TRUE(InSameScc(scc, 0, 1));
  EXPECT_TRUE(InSameScc(scc, 2, 3));
  EXPECT_FALSE(InSameScc(scc, 1, 2));
}

TEST(SccTest, ReverseTopologicalNumbering) {
  // Tarjan numbers a component before any component it can reach.
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // 0 reaches 1; both singletons
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  EXPECT_LT(scc.component[1], scc.component[0]);
}

TEST(SccTest, ComponentSizesAndLargest) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 3);
  builder.AddEdge(2, 3);
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  const auto sizes = scc.ComponentSizes();
  std::multiset<uint32_t> size_set(sizes.begin(), sizes.end());
  EXPECT_EQ(size_set, (std::multiset<uint32_t>{2, 3}));
  const auto largest = scc.LargestComponent();
  EXPECT_EQ(largest, (std::vector<NodeId>{0, 1, 2}));
}

TEST(SccTest, EmptyGraph) {
  const SccResult scc = StronglyConnectedComponents(Graph());
  EXPECT_EQ(scc.num_components, 0u);
  EXPECT_TRUE(scc.LargestComponent().empty());
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 200k-node chain: a recursive Tarjan would blow the stack.
  GraphBuilder builder;
  constexpr NodeId kN = 200000;
  for (NodeId u = 0; u + 1 < kN; ++u) builder.AddEdge(u, u + 1);
  const SccResult scc = StronglyConnectedComponents(builder.Build().value());
  EXPECT_EQ(scc.num_components, kN);
}

TEST(SccTest, MutualReachabilityOracle) {
  // Property: u,v in the same SCC iff v reachable from u and u from v.
  BarabasiAlbertConfig config;
  config.num_nodes = 120;
  config.edges_per_node = 3;
  config.reciprocity = 0.4;
  config.seed = 21;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const SccResult scc = StronglyConnectedComponents(g);
  for (NodeId u = 0; u < 20; ++u) {  // sample sources
    const auto fwd = BfsDistances(g, u, Direction::kForward).value();
    const auto bwd = BfsDistances(g, u, Direction::kBackward).value();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool mutual =
          fwd[v] != kUnreachable && bwd[v] != kUnreachable;
      EXPECT_EQ(mutual, InSameScc(scc, u, v)) << u << " vs " << v;
    }
  }
}

}  // namespace
}  // namespace cyclerank
