#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

// 0 -> 1 -> 2 -> 3, plus 3 -> 0 closing the loop, plus isolated 4.
Graph LoopPlusIsolated() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  builder.ReserveNodes(5);
  return builder.Build().value();
}

TEST(TraversalTest, ForwardDistances) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 0, Direction::kForward).value();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(TraversalTest, BackwardDistancesFollowInEdges) {
  const Graph g = LoopPlusIsolated();
  // Backward from 0: who can reach 0 and in how many steps?
  const auto dist = BfsDistances(g, 0, Direction::kBackward).value();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 1u);  // 3 -> 0
  EXPECT_EQ(dist[2], 2u);  // 2 -> 3 -> 0
  EXPECT_EQ(dist[1], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(TraversalTest, MaxDepthBoundsExploration) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 0, Direction::kForward, 2).value();
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);  // beyond the bound
}

TEST(TraversalTest, MaxDepthZeroOnlySource) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 1, Direction::kForward, 0).value();
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(TraversalTest, ShortestPathChosenOverLonger) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);  // shortcut
  const Graph g = builder.Build().value();
  const auto dist = BfsDistances(g, 0, Direction::kForward).value();
  EXPECT_EQ(dist[2], 1u);
}

TEST(TraversalTest, InvalidSourceRejected) {
  const Graph g = LoopPlusIsolated();
  EXPECT_EQ(BfsDistances(g, 99, Direction::kForward).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TraversalTest, ReachableSetAscendingAndIncludesSource) {
  const Graph g = LoopPlusIsolated();
  const auto reach = ReachableSet(g, 1, Direction::kForward, 2).value();
  // From 1 within 2 hops: 1, 2, 3.
  ASSERT_EQ(reach.size(), 3u);
  EXPECT_EQ(reach[0], 1u);
  EXPECT_EQ(reach[1], 2u);
  EXPECT_EQ(reach[2], 3u);
}

TEST(TraversalTest, ReachableSetWholeLoop) {
  const Graph g = LoopPlusIsolated();
  const auto reach = ReachableSet(g, 2, Direction::kForward).value();
  EXPECT_EQ(reach.size(), 4u);  // everything except the isolated node
}

}  // namespace
}  // namespace cyclerank
