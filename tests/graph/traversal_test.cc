#include "graph/traversal.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

// 0 -> 1 -> 2 -> 3, plus 3 -> 0 closing the loop, plus isolated 4.
Graph LoopPlusIsolated() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  builder.ReserveNodes(5);
  return builder.Build().value();
}

TEST(TraversalTest, ForwardDistances) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 0, Direction::kForward).value();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(TraversalTest, BackwardDistancesFollowInEdges) {
  const Graph g = LoopPlusIsolated();
  // Backward from 0: who can reach 0 and in how many steps?
  const auto dist = BfsDistances(g, 0, Direction::kBackward).value();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 1u);  // 3 -> 0
  EXPECT_EQ(dist[2], 2u);  // 2 -> 3 -> 0
  EXPECT_EQ(dist[1], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(TraversalTest, MaxDepthBoundsExploration) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 0, Direction::kForward, 2).value();
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);  // beyond the bound
}

TEST(TraversalTest, MaxDepthZeroOnlySource) {
  const Graph g = LoopPlusIsolated();
  const auto dist = BfsDistances(g, 1, Direction::kForward, 0).value();
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(TraversalTest, ShortestPathChosenOverLonger) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);  // shortcut
  const Graph g = builder.Build().value();
  const auto dist = BfsDistances(g, 0, Direction::kForward).value();
  EXPECT_EQ(dist[2], 1u);
}

TEST(TraversalTest, InvalidSourceRejected) {
  const Graph g = LoopPlusIsolated();
  EXPECT_EQ(BfsDistances(g, 99, Direction::kForward).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TraversalTest, ReachableSetAscendingAndIncludesSource) {
  const Graph g = LoopPlusIsolated();
  const auto reach = ReachableSet(g, 1, Direction::kForward, 2).value();
  // From 1 within 2 hops: 1, 2, 3.
  ASSERT_EQ(reach.size(), 3u);
  EXPECT_EQ(reach[0], 1u);
  EXPECT_EQ(reach[1], 2u);
  EXPECT_EQ(reach[2], 3u);
}

TEST(TraversalTest, ReachableSetWholeLoop) {
  const Graph g = LoopPlusIsolated();
  const auto reach = ReachableSet(g, 2, Direction::kForward).value();
  EXPECT_EQ(reach.size(), 4u);  // everything except the isolated node
}

Graph RandomGraph(NodeId n, uint64_t seed) {
  BarabasiAlbertConfig config;
  config.num_nodes = n;
  config.edges_per_node = 5;
  config.reciprocity = 0.4;
  config.seed = seed;
  return GenerateBarabasiAlbert(config).value();
}

TEST(TraversalTest, BfsDistancesBitIdenticalAcrossThreadCounts) {
  const Graph g = RandomGraph(2000, 11);
  for (Direction direction : {Direction::kForward, Direction::kBackward}) {
    const auto base = BfsDistances(g, 0, direction, kUnreachable,
                                   /*num_threads=*/1)
                          .value();
    for (uint32_t threads : {2u, 4u, 8u}) {
      EXPECT_EQ(base, BfsDistances(g, 0, direction, kUnreachable, threads)
                          .value())
          << "threads=" << threads;
    }
  }
}

TEST(TraversalTest, BoundedBfsBitIdenticalAcrossThreadCounts) {
  const Graph g = RandomGraph(1500, 13);
  for (uint32_t depth : {1u, 2u, 4u}) {
    const auto base =
        BfsDistances(g, 3, Direction::kBackward, depth, 1).value();
    for (uint32_t threads : {2u, 4u, 8u}) {
      EXPECT_EQ(base,
                BfsDistances(g, 3, Direction::kBackward, depth, threads)
                    .value())
          << "depth=" << depth << " threads=" << threads;
    }
  }
}

TEST(TraversalTest, ParallelBfsMatchesReferenceImplementation) {
  // Cross-check the frontier-engine BFS against a straightforward serial
  // BFS written here, on a graph large enough for many chunks per wave.
  const Graph g = RandomGraph(3000, 17);
  std::vector<uint32_t> expected(g.num_nodes(), kUnreachable);
  expected[7] = 0;
  std::vector<NodeId> queue{7};
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (NodeId v : g.OutNeighbors(u)) {
      if (expected[v] == kUnreachable) {
        expected[v] = expected[u] + 1;
        queue.push_back(v);
      }
    }
  }
  for (uint32_t threads : {1u, 4u}) {
    EXPECT_EQ(expected,
              BfsDistances(g, 7, Direction::kForward, kUnreachable, threads)
                  .value());
  }
}

TEST(TraversalTest, ConcurrentQueriesShareTheGraphSafely) {
  // Many traversals over one shared immutable graph, each itself fanning
  // out on the global pool — the nesting the caller-runs design supports.
  // Run under -DCYCLERANK_SANITIZE=thread this doubles as the TSan stress
  // test for concurrent frontier queries.
  const Graph g = RandomGraph(1200, 19);
  const auto expected =
      BfsDistances(g, 0, Direction::kForward, kUnreachable, 1).value();
  std::vector<std::thread> workers;
  std::vector<int> ok(8, 0);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      const auto dist =
          BfsDistances(g, 0, Direction::kForward, kUnreachable, 4).value();
      ok[t] = dist == expected ? 1 : 0;
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
}

}  // namespace
}  // namespace cyclerank
