#include "graph/io_edgelist.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

Result<Graph> Parse(const std::string& text,
                    const EdgeListReadOptions& options = {}) {
  std::istringstream in(text);
  return ReadEdgeList(in, options);
}

TEST(EdgeListTest, ParsesCommaSeparatedNumericPairs) {
  const Graph g = Parse("0,1\n1,2\n2,0\n").value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.labels(), nullptr);  // numeric mode
}

TEST(EdgeListTest, ParsesWhitespaceSeparatedPairs) {
  const Graph g = Parse("0 1\n1 2\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListTest, ParsesSemicolonAndTab) {
  EXPECT_EQ(Parse("0;1\n1;2\n").value().num_edges(), 2u);
  EXPECT_EQ(Parse("0\t1\n").value().num_edges(), 1u);
}

TEST(EdgeListTest, SkipsCommentsAndBlankLines) {
  const Graph g = Parse("# comment\n\n0,1\n% other comment\n1,2\n\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListTest, LabeledModeWhenTokensAreNotNumeric) {
  const Graph g = Parse("Pasta,Italy\nItaly,Pasta\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.HasEdge(g.FindNode("Pasta"), g.FindNode("Italy")));
}

TEST(EdgeListTest, MixedTokensFallBackToLabeled) {
  // One non-numeric endpoint turns the whole file into labeled mode.
  const Graph g = Parse("1,2\nfoo,1\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 3u);  // "1", "2", "foo"
  EXPECT_NE(g.FindNode("foo"), kInvalidNode);
}

TEST(EdgeListTest, LabeledFallbackPreservesNumericSpellings) {
  // The one-pass reader holds early numeric edges as integers; when a
  // later token forces labeled mode, the originals must come back with
  // their exact spelling — "007" and "7" are different labels.
  const Graph g = Parse("007,7\n7,007\nfoo,007\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 3u);  // "007", "7", "foo"
  const NodeId padded = g.FindNode("007");
  const NodeId plain = g.FindNode("7");
  ASSERT_NE(padded, kInvalidNode);
  ASSERT_NE(plain, kInvalidNode);
  EXPECT_NE(padded, plain);
  EXPECT_TRUE(g.HasEdge(padded, plain));
  EXPECT_TRUE(g.HasEdge(g.FindNode("foo"), padded));
  // First-appearance numbering starts at the first line, not the fallback
  // point.
  EXPECT_EQ(padded, 0u);
  EXPECT_EQ(plain, 1u);
}

TEST(EdgeListTest, NegativeIdsAreLabelsWhenFileIsLabeled) {
  // "-1" only poisons an all-numeric file; alongside a word token it is a
  // perfectly good label.
  const Graph g = Parse("-1,foo\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_NE(g.FindNode("-1"), kInvalidNode);
}

TEST(EdgeListTest, LargeNumericFileStaysNumeric) {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    text += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  const Graph g = Parse(text).value();
  EXPECT_EQ(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 1001u);
  EXPECT_EQ(g.num_edges(), 1000u);
}

TEST(EdgeListTest, ForceLabeledTreatsNumbersAsLabels) {
  EdgeListReadOptions options;
  options.force_labeled = true;
  const Graph g = Parse("10,20\n", options).value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 2u);  // not 21 numeric nodes
  EXPECT_NE(g.FindNode("10"), kInvalidNode);
}

TEST(EdgeListTest, LabelsMayContainSpaces) {
  const Graph g = Parse("Freddie Mercury,Queen (band)\n").value();
  EXPECT_NE(g.FindNode("Freddie Mercury"), kInvalidNode);
  EXPECT_NE(g.FindNode("Queen (band)"), kInvalidNode);
}

TEST(EdgeListTest, RejectsWrongFieldCount) {
  EXPECT_EQ(Parse("0,1,2\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("0\n").status().code(), StatusCode::kParseError);
}

TEST(EdgeListTest, RejectsNegativeIds) {
  EXPECT_EQ(Parse("-1,2\n").status().code(), StatusCode::kParseError);
}

TEST(EdgeListTest, RejectsIdsBeyondNodeIdRange) {
  // 2^32 would silently wrap to node 0 in the NodeId cast.
  EXPECT_EQ(Parse("4294967296,1\n").status().code(), StatusCode::kParseError);
  // The sentinel value itself is reserved too.
  EXPECT_EQ(Parse("4294967295,1\n").status().code(), StatusCode::kParseError);
  // In a labeled file the same token is a perfectly good label.
  const Graph g = Parse("4294967296,foo\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_NE(g.FindNode("4294967296"), kInvalidNode);
}

TEST(EdgeListTest, EmptyInputYieldsEmptyGraph) {
  const Graph g = Parse("").value();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EdgeListTest, WriteReadRoundTripNumeric) {
  const Graph g = Parse("0,3\n1,2\n3,1\n").value();
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_TRUE(g2.HasEdge(0, 3));
  EXPECT_TRUE(g2.HasEdge(3, 1));
}

TEST(EdgeListTest, WriteReadRoundTripLabeled) {
  const Graph g = Parse("a,b\nb,c\nc,a\n").value();
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  ASSERT_NE(g2.labels(), nullptr);
  EXPECT_TRUE(g2.HasEdge(g2.FindNode("c"), g2.FindNode("a")));
}

}  // namespace
}  // namespace cyclerank
