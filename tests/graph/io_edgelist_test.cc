#include "graph/io_edgelist.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

Result<Graph> Parse(const std::string& text,
                    const EdgeListReadOptions& options = {}) {
  std::istringstream in(text);
  return ReadEdgeList(in, options);
}

TEST(EdgeListTest, ParsesCommaSeparatedNumericPairs) {
  const Graph g = Parse("0,1\n1,2\n2,0\n").value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.labels(), nullptr);  // numeric mode
}

TEST(EdgeListTest, ParsesWhitespaceSeparatedPairs) {
  const Graph g = Parse("0 1\n1 2\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListTest, ParsesSemicolonAndTab) {
  EXPECT_EQ(Parse("0;1\n1;2\n").value().num_edges(), 2u);
  EXPECT_EQ(Parse("0\t1\n").value().num_edges(), 1u);
}

TEST(EdgeListTest, SkipsCommentsAndBlankLines) {
  const Graph g = Parse("# comment\n\n0,1\n% other comment\n1,2\n\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListTest, LabeledModeWhenTokensAreNotNumeric) {
  const Graph g = Parse("Pasta,Italy\nItaly,Pasta\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.HasEdge(g.FindNode("Pasta"), g.FindNode("Italy")));
}

TEST(EdgeListTest, MixedTokensFallBackToLabeled) {
  // One non-numeric endpoint turns the whole file into labeled mode.
  const Graph g = Parse("1,2\nfoo,1\n").value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 3u);  // "1", "2", "foo"
  EXPECT_NE(g.FindNode("foo"), kInvalidNode);
}

TEST(EdgeListTest, ForceLabeledTreatsNumbersAsLabels) {
  EdgeListReadOptions options;
  options.force_labeled = true;
  const Graph g = Parse("10,20\n", options).value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 2u);  // not 21 numeric nodes
  EXPECT_NE(g.FindNode("10"), kInvalidNode);
}

TEST(EdgeListTest, LabelsMayContainSpaces) {
  const Graph g = Parse("Freddie Mercury,Queen (band)\n").value();
  EXPECT_NE(g.FindNode("Freddie Mercury"), kInvalidNode);
  EXPECT_NE(g.FindNode("Queen (band)"), kInvalidNode);
}

TEST(EdgeListTest, RejectsWrongFieldCount) {
  EXPECT_EQ(Parse("0,1,2\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("0\n").status().code(), StatusCode::kParseError);
}

TEST(EdgeListTest, RejectsNegativeIds) {
  EXPECT_EQ(Parse("-1,2\n").status().code(), StatusCode::kParseError);
}

TEST(EdgeListTest, EmptyInputYieldsEmptyGraph) {
  const Graph g = Parse("").value();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EdgeListTest, WriteReadRoundTripNumeric) {
  const Graph g = Parse("0,3\n1,2\n3,1\n").value();
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_TRUE(g2.HasEdge(0, 3));
  EXPECT_TRUE(g2.HasEdge(3, 1));
}

TEST(EdgeListTest, WriteReadRoundTripLabeled) {
  const Graph g = Parse("a,b\nb,c\nc,a\n").value();
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  ASSERT_NE(g2.labels(), nullptr);
  EXPECT_TRUE(g2.HasEdge(g2.FindNode("c"), g2.FindNode("a")));
}

}  // namespace
}  // namespace cyclerank
