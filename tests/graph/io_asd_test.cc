#include "graph/io_asd.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

Result<Graph> Parse(const std::string& text) {
  std::istringstream in(text);
  return ReadAsd(in);
}

TEST(AsdTest, ParsesHeaderAndEdges) {
  const Graph g = Parse("3 3\n0 1\n1 2\n2 0\n").value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(AsdTest, NodeCountMayExceedTouchedNodes) {
  const Graph g = Parse("10 1\n0 1\n").value();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
}

TEST(AsdTest, CommentsSkipped) {
  const Graph g = Parse("# generated\n2 1\n# edge follows\n0 1\n").value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AsdTest, RejectsMissingHeader) {
  EXPECT_EQ(Parse("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("# only comments\n").status().code(),
            StatusCode::kParseError);
}

TEST(AsdTest, RejectsMalformedHeader) {
  EXPECT_EQ(Parse("3\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("3 2 1\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("-1 0\n").status().code(), StatusCode::kParseError);
}

TEST(AsdTest, RejectsTooFewEdges) {
  EXPECT_EQ(Parse("3 2\n0 1\n").status().code(), StatusCode::kParseError);
}

TEST(AsdTest, RejectsTrailingData) {
  EXPECT_EQ(Parse("2 1\n0 1\n1 0\n").status().code(), StatusCode::kParseError);
}

TEST(AsdTest, RejectsEndpointOutOfRange) {
  EXPECT_EQ(Parse("2 1\n0 2\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("2 1\n-1 0\n").status().code(), StatusCode::kParseError);
}

TEST(AsdTest, RejectsMalformedEdgeLine) {
  EXPECT_EQ(Parse("2 1\n0 1 2\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("2 1\n0\n").status().code(), StatusCode::kParseError);
}

TEST(AsdTest, WriteReadRoundTrip) {
  const Graph g = Parse("4 3\n0 1\n1 2\n3 0\n").value();
  std::ostringstream out;
  ASSERT_TRUE(WriteAsd(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  EXPECT_EQ(g2.num_nodes(), 4u);
  EXPECT_EQ(g2.num_edges(), 3u);
  EXPECT_TRUE(g2.HasEdge(3, 0));
}

TEST(AsdTest, EmptyGraphRoundTrip) {
  const Graph g = Parse("0 0\n").value();
  EXPECT_EQ(g.num_nodes(), 0u);
  std::ostringstream out;
  ASSERT_TRUE(WriteAsd(g, out).ok());
  EXPECT_EQ(Parse(out.str()).value().num_nodes(), 0u);
}

}  // namespace
}  // namespace cyclerank
