#include "graph/sharded_graph.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

/// Two triangles bridged by two cut edges:
///   shard {0,1,2}: 0→1→2→0, plus 0→3 and 2→5 leaving the range;
///   shard {3,4,5}: 3→4→5→3, fully internal.
GraphPtr BridgedTriangles() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 3);
  builder.AddEdge(2, 5);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  return builder.BuildShared().value();
}

GraphPtr SkewedBaGraph(NodeId n) {
  BarabasiAlbertConfig config;
  config.num_nodes = n;
  config.edges_per_node = 4;
  config.reciprocity = 0.3;
  config.seed = 11;
  return std::make_shared<const Graph>(GenerateBarabasiAlbert(config).value());
}

TEST(ContiguousRangePartitionerTest, EqualRangesEvenWhenNotDividing) {
  const GraphPtr g = BridgedTriangles();  // 6 nodes
  const ContiguousRangePartitioner partitioner;
  EXPECT_EQ(partitioner.Partition(*g, 2).value(),
            (std::vector<NodeId>{0, 3, 6}));
  // 4 does not divide 6: ranges of 1 or 2 nodes, still spanning [0, 6].
  EXPECT_EQ(partitioner.Partition(*g, 4).value(),
            (std::vector<NodeId>{0, 1, 3, 4, 6}));
  // More shards than nodes: the tail ranges are empty, which is legal.
  const std::vector<NodeId> bounds = partitioner.Partition(*g, 8).value();
  ASSERT_EQ(bounds.size(), 9u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 6u);
  EXPECT_FALSE(partitioner.Partition(*g, 0).ok());
}

TEST(DegreeBalancedPartitionerTest, CutsMoveTowardTheHeavyNodes) {
  // A hub star: node 0 carries almost all edge weight, so the first cut
  // must land far left of the contiguous midpoint.
  GraphBuilder builder;
  const NodeId kLeaves = 40;
  for (NodeId v = 1; v <= kLeaves; ++v) builder.AddEdge(0, v);
  const GraphPtr g = builder.BuildShared().value();
  const DegreeBalancedPartitioner partitioner;
  const std::vector<NodeId> bounds = partitioner.Partition(*g, 2).value();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), kLeaves + 1);
  EXPECT_LT(bounds[1], (kLeaves + 1) / 2);
  EXPECT_GE(bounds[1], 1u);  // the hub alone already fills most of a share
  // Deterministic: a second call returns the same cuts.
  EXPECT_EQ(partitioner.Partition(*g, 2).value(), bounds);
}

TEST(ShardedGraphTest, RowsAreElementEqualToTheParent) {
  const GraphPtr g = SkewedBaGraph(200);
  for (uint32_t shards : {1u, 3u, 7u}) {
    const ShardedGraph view =
        ShardedGraph::Build(g, shards, ContiguousRangePartitioner()).value();
    ASSERT_EQ(view.num_shards(), shards);
    for (NodeId u = 0; u < g->num_nodes(); ++u) {
      const uint32_t s = view.ShardOf(u);
      ASSERT_GE(u, view.bounds()[s]);
      ASSERT_LT(u, view.bounds()[s + 1]);
      const auto out = view.OutNeighbors(s, u);
      const auto parent_out = g->OutNeighbors(u);
      ASSERT_TRUE(std::equal(out.begin(), out.end(), parent_out.begin(),
                             parent_out.end()))
          << "out row of node " << u << " at shards=" << shards;
      const auto in = view.InNeighbors(s, u);
      const auto parent_in = g->InNeighbors(u);
      ASSERT_TRUE(std::equal(in.begin(), in.end(), parent_in.begin(),
                             parent_in.end()))
          << "in row of node " << u << " at shards=" << shards;
    }
  }
}

TEST(ShardedGraphTest, BoundaryAndHaloIndexOnAKnownGraph) {
  const GraphPtr g = BridgedTriangles();
  const ShardedGraph view =
      ShardedGraph::Build(g, 2, ContiguousRangePartitioner()).value();
  // Shard 0 = {0,1,2}: two out-edges leave it (0→3, 2→5), none enter it.
  EXPECT_EQ(view.BoundaryOutEdges(0), 2u);
  EXPECT_EQ(view.BoundaryInEdges(0), 0u);
  EXPECT_EQ(std::vector<NodeId>(view.Halo(0).begin(), view.Halo(0).end()),
            (std::vector<NodeId>{3, 5}));
  // Shard 1 = {3,4,5}: internal triangle, but the two bridge edges land
  // here.
  EXPECT_EQ(view.BoundaryOutEdges(1), 0u);
  EXPECT_EQ(view.BoundaryInEdges(1), 2u);
  EXPECT_TRUE(view.Halo(1).empty());
  // Edge-cut size counts each cut edge once, at its source shard.
  EXPECT_EQ(view.TotalBoundaryEdges(), 2u);
  // A single shard has no boundary at all.
  const ShardedGraph whole =
      ShardedGraph::Build(g, 1, ContiguousRangePartitioner()).value();
  EXPECT_EQ(whole.TotalBoundaryEdges(), 0u);
  EXPECT_EQ(whole.BoundaryInEdges(0), 0u);
  EXPECT_TRUE(whole.Halo(0).empty());
}

TEST(ShardedGraphTest, HaloIsSortedAndDeduplicated) {
  // Both 0 and 1 point at the external nodes 3 and 2 (2 twice): the halo
  // must list each external target once, ascending.
  GraphBuilder builder;
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const GraphPtr g = builder.BuildShared().value();
  const ShardedGraph view =
      ShardedGraph::Build(g, 2, ContiguousRangePartitioner()).value();
  ASSERT_EQ(view.bounds()[1], 2u);  // shard 0 = {0, 1}
  EXPECT_EQ(std::vector<NodeId>(view.Halo(0).begin(), view.Halo(0).end()),
            (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(view.BoundaryOutEdges(0), 4u);
}

TEST(ShardedGraphTest, MemoryBytesIsDeterministic) {
  const GraphPtr g = SkewedBaGraph(300);
  const ShardedGraph a =
      ShardedGraph::Build(g, 4, ContiguousRangePartitioner()).value();
  const ShardedGraph b =
      ShardedGraph::Build(g, 4, ContiguousRangePartitioner()).value();
  EXPECT_GT(a.MemoryBytes(), sizeof(ShardedGraph));
  EXPECT_EQ(a.MemoryBytes(), b.MemoryBytes());
  // More shards → more offset arrays, never fewer bytes.
  const ShardedGraph more =
      ShardedGraph::Build(g, 8, ContiguousRangePartitioner()).value();
  EXPECT_GE(more.MemoryBytes(), a.MemoryBytes());
}

TEST(ShardedGraphTest, ViewPinsItsParent) {
  GraphPtr g = BridgedTriangles();
  const Graph* raw = g.get();
  auto view = std::make_shared<const ShardedGraph>(
      ShardedGraph::Build(g, 2, ContiguousRangePartitioner()).value());
  EXPECT_EQ(view->parent().get(), raw);
  // Dropping the caller's handle leaves the parent alive through the pin:
  // the row copies' global ids keep resolving against it.
  g.reset();
  EXPECT_EQ(view->parent()->num_nodes(), 6u);
  EXPECT_EQ(view->OutNeighbors(view->ShardOf(0), 0).size(), 2u);
}

TEST(ShardedGraphTest, PartitionerNameIsRecorded) {
  const GraphPtr g = BridgedTriangles();
  EXPECT_EQ(ShardedGraph::Build(g, 2, ContiguousRangePartitioner())
                .value()
                .partitioner_name(),
            "contiguous_range");
  EXPECT_EQ(ShardedGraph::Build(g, 2, DegreeBalancedPartitioner())
                .value()
                .partitioner_name(),
            "degree_balanced");
}

/// A policy violating the bounds contract, for the validation test.
class BrokenPartitioner final : public GraphPartitioner {
 public:
  explicit BrokenPartitioner(std::vector<NodeId> bounds)
      : bounds_(std::move(bounds)) {}
  std::string_view name() const override { return "broken"; }
  Result<std::vector<NodeId>> Partition(const Graph&,
                                        uint32_t) const override {
    return bounds_;
  }

 private:
  std::vector<NodeId> bounds_;
};

TEST(ShardedGraphTest, BuildRejectsBadInputAndMalformedBounds) {
  const GraphPtr g = BridgedTriangles();  // 6 nodes
  const ContiguousRangePartitioner ok;
  EXPECT_EQ(ShardedGraph::Build(nullptr, 2, ok).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedGraph::Build(g, 0, ok).status().code(),
            StatusCode::kInvalidArgument);
  // A malformed partition fails loudly, naming the policy.
  for (const auto& bounds :
       {std::vector<NodeId>{0, 6},        // wrong size for 2 shards
        std::vector<NodeId>{0, 3, 5},     // does not span [0, 6]
        std::vector<NodeId>{1, 3, 6},     // does not start at 0
        std::vector<NodeId>{0, 7, 6}}) {  // not ascending
    const auto result = ShardedGraph::Build(g, 2, BrokenPartitioner(bounds));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace cyclerank
