#include "graph/io_pajek.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

Result<Graph> Parse(const std::string& text) {
  std::istringstream in(text);
  return ReadPajek(in);
}

TEST(PajekTest, ParsesVerticesAndArcs) {
  const Graph g = Parse(
                      "*Vertices 3\n"
                      "1 \"alpha\"\n"
                      "2 \"beta\"\n"
                      "3 \"gamma\"\n"
                      "*Arcs\n"
                      "1 2\n"
                      "2 3\n")
                      .value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_TRUE(g.HasEdge(g.FindNode("alpha"), g.FindNode("beta")));
}

TEST(PajekTest, EdgesSectionIsUndirected) {
  const Graph g = Parse(
                      "*Vertices 2\n"
                      "*Edges\n"
                      "1 2\n")
                      .value();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(PajekTest, UnlabeledVerticesAllowed) {
  const Graph g = Parse("*Vertices 4\n*Arcs\n1 4\n").value();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_EQ(g.labels(), nullptr);
}

TEST(PajekTest, WeightsAreIgnored) {
  const Graph g = Parse("*Vertices 2\n*Arcs\n1 2 3.5\n").value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(PajekTest, CommentsSkipped) {
  const Graph g = Parse(
                      "% pajek comment\n"
                      "*Vertices 2\n"
                      "% another\n"
                      "*Arcs\n"
                      "1 2\n")
                      .value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(PajekTest, ArcsListSection) {
  const Graph g = Parse("*Vertices 4\n*Arcslist\n1 2 3 4\n").value();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 3));
}

TEST(PajekTest, EdgesListSectionIsUndirected) {
  const Graph g = Parse("*Vertices 3\n*Edgeslist\n1 2 3\n").value();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(PajekTest, PartialLabelsGetSyntheticNames) {
  const Graph g = Parse(
                      "*Vertices 3\n"
                      "1 \"named\"\n"
                      "*Arcs\n"
                      "2 3\n")
                      .value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.NodeName(0), "named");
  EXPECT_EQ(g.NodeName(1), "v2");
  EXPECT_EQ(g.NodeName(2), "v3");
}

TEST(PajekTest, RejectsMissingVertices) {
  EXPECT_EQ(Parse("*Arcs\n1 2\n").status().code(), StatusCode::kParseError);
}

TEST(PajekTest, RejectsOutOfRangeEndpoint) {
  EXPECT_EQ(Parse("*Vertices 2\n*Arcs\n1 3\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parse("*Vertices 2\n*Arcs\n0 1\n").status().code(),
            StatusCode::kParseError);  // pajek is 1-based
}

TEST(PajekTest, RejectsDataBeforeSection) {
  EXPECT_EQ(Parse("1 2\n").status().code(), StatusCode::kParseError);
}

TEST(PajekTest, RejectsUnknownSection) {
  EXPECT_EQ(Parse("*Vertices 2\n*Bogus\n").status().code(),
            StatusCode::kParseError);
}

TEST(PajekTest, RejectsVertexIdOutOfDeclaredRange) {
  EXPECT_EQ(Parse("*Vertices 2\n5 \"x\"\n").status().code(),
            StatusCode::kParseError);
}

TEST(PajekTest, WriteReadRoundTripPreservesLabelsAndEdges) {
  const Graph g = Parse(
                      "*Vertices 3\n"
                      "1 \"a\"\n"
                      "2 \"b\"\n"
                      "3 \"c\"\n"
                      "*Arcs\n"
                      "1 2\n"
                      "3 1\n")
                      .value();
  std::ostringstream out;
  ASSERT_TRUE(WritePajek(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  EXPECT_EQ(g2.num_nodes(), 3u);
  EXPECT_EQ(g2.num_edges(), 2u);
  EXPECT_TRUE(g2.HasEdge(g2.FindNode("c"), g2.FindNode("a")));
}

TEST(PajekTest, CaseInsensitiveKeywords) {
  const Graph g = Parse("*VERTICES 2\n*arcs\n1 2\n").value();
  EXPECT_EQ(g.num_edges(), 1u);
}

}  // namespace
}  // namespace cyclerank
