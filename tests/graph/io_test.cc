#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "datasets/generators.h"

namespace cyclerank {
namespace {

TEST(IoTest, FormatFromPath) {
  EXPECT_EQ(GraphFormatFromPath("g.csv").value(), GraphFormat::kEdgeList);
  EXPECT_EQ(GraphFormatFromPath("g.edges").value(), GraphFormat::kEdgeList);
  EXPECT_EQ(GraphFormatFromPath("dir/g.txt").value(), GraphFormat::kEdgeList);
  EXPECT_EQ(GraphFormatFromPath("g.net").value(), GraphFormat::kPajek);
  EXPECT_EQ(GraphFormatFromPath("g.PAJEK").value(), GraphFormat::kPajek);
  EXPECT_EQ(GraphFormatFromPath("g.asd").value(), GraphFormat::kAsd);
  EXPECT_FALSE(GraphFormatFromPath("g.xyz").ok());
  EXPECT_FALSE(GraphFormatFromPath("noext").ok());
}

TEST(IoTest, FormatNames) {
  EXPECT_EQ(GraphFormatToString(GraphFormat::kEdgeList), "edgelist");
  EXPECT_EQ(GraphFormatToString(GraphFormat::kPajek), "pajek");
  EXPECT_EQ(GraphFormatToString(GraphFormat::kAsd), "asd");
}

TEST(IoTest, SniffsPajek) {
  EXPECT_EQ(SniffGraphFormat("*Vertices 3\n*Arcs\n1 2\n"),
            GraphFormat::kPajek);
  EXPECT_EQ(SniffGraphFormat("% comment\n*Vertices 1\n"), GraphFormat::kPajek);
}

TEST(IoTest, SniffsAsdWhenEdgeCountMatches) {
  EXPECT_EQ(SniffGraphFormat("3 2\n0 1\n1 2\n"), GraphFormat::kAsd);
}

TEST(IoTest, SniffsEdgeListWhenCountMismatches) {
  // "0 1\n1 2\n" would be ASD "N=0 M=1"? No: header 0 1 with 1 data line
  // matches M=1... use a clearly-not-ASD input.
  EXPECT_EQ(SniffGraphFormat("5 7\n1 2\n"), GraphFormat::kEdgeList);
  EXPECT_EQ(SniffGraphFormat("a,b\nb,c\n"), GraphFormat::kEdgeList);
  EXPECT_EQ(SniffGraphFormat("0,1\n1,2\n"), GraphFormat::kEdgeList);
}

TEST(IoTest, ReadGraphFromStringAutodetects) {
  const Graph pajek =
      ReadGraphFromString("*Vertices 2\n*Arcs\n1 2\n").value();
  EXPECT_EQ(pajek.num_edges(), 1u);
  const Graph asd = ReadGraphFromString("2 1\n0 1\n").value();
  EXPECT_EQ(asd.num_nodes(), 2u);
  const Graph csv = ReadGraphFromString("x,y\ny,x\n").value();
  EXPECT_EQ(csv.num_edges(), 2u);
}

class IoRoundTripTest : public ::testing::TestWithParam<GraphFormat> {};

TEST_P(IoRoundTripTest, StringRoundTripPreservesStructure) {
  // Property: for every format, write(read(write(g))) preserves node and
  // edge sets of a generated graph.
  ErdosRenyiConfig config;
  config.num_nodes = 60;
  config.edge_prob = 0.05;
  config.seed = 17;
  const Graph g = GenerateErdosRenyi(config).value();
  const std::string text = WriteGraphToString(g, GetParam()).value();
  const Graph g2 = ReadGraphFromString(text, GetParam()).value();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.OutNeighbors(u);
    const auto b = g2.OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, IoRoundTripTest,
                         ::testing::Values(GraphFormat::kEdgeList,
                                           GraphFormat::kPajek,
                                           GraphFormat::kAsd),
                         [](const auto& test_info) {
                           return std::string(GraphFormatToString(test_info.param));
                         });

TEST(IoTest, FileRoundTrip) {
  GraphBuildOptions build;
  const Graph g = ReadGraphFromString("0,1\n1,2\n2,0\n").value();
  const std::string path = ::testing::TempDir() + "/io_test_graph.asd";
  ASSERT_TRUE(WriteGraphFile(g, path, GraphFormat::kAsd).ok());
  const Graph g2 = ReadGraphFile(path).value();  // format from extension
  EXPECT_EQ(g2.num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileIsIOError) {
  EXPECT_EQ(ReadGraphFile("/nonexistent/path/g.csv").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace cyclerank
