#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph Triangle() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return builder.Build().value();
}

TEST(GraphTest, DefaultGraphIsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.IsValidNode(0));
}

TEST(GraphTest, BasicCounts) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
}

TEST(GraphTest, HasEdgeExactness) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  const Graph g = Triangle();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
  EXPECT_FALSE(g.HasEdge(kInvalidNode, 0));
}

TEST(GraphTest, IsValidNodeBoundary) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.IsValidNode(0));
  EXPECT_TRUE(g.IsValidNode(2));
  EXPECT_FALSE(g.IsValidNode(3));
  EXPECT_FALSE(g.IsValidNode(kInvalidNode));
}

TEST(GraphTest, NeighborSpansViewCorrectMemory) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build().value();
  const auto row0 = g.OutNeighbors(0);
  const auto row1 = g.OutNeighbors(1);
  const auto row2 = g.OutNeighbors(2);
  EXPECT_EQ(row0.size(), 2u);
  EXPECT_EQ(row1.size(), 1u);
  EXPECT_EQ(row2.size(), 0u);
  EXPECT_EQ(row1[0], 2u);
}

TEST(GraphTest, FindNodeOnLabeledGraph) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  const Graph g = builder.Build().value();
  EXPECT_NE(g.FindNode("Pasta"), kInvalidNode);
  EXPECT_EQ(g.FindNode("Missing"), kInvalidNode);
  EXPECT_EQ(g.NodeName(g.FindNode("Italy")), "Italy");
}

TEST(GraphTest, MemoryBytesOfEmptyGraphIsJustTheObject) {
  const Graph g;
  EXPECT_EQ(g.MemoryBytes(), sizeof(Graph));
}

TEST(GraphTest, MemoryBytesAccountsForCsrArrays) {
  // Unlabeled n-node graph: two offset arrays of n+1 uint64 plus two
  // adjacency arrays of m NodeIds — the accounting is exact, by element
  // count, so admission decisions are deterministic.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build().value();
  const size_t n = g.num_nodes();
  const size_t m = g.num_edges();
  EXPECT_EQ(g.MemoryBytes(), sizeof(Graph) + 2 * (n + 1) * sizeof(uint64_t) +
                                 2 * m * sizeof(NodeId));
}

TEST(GraphTest, MemoryBytesGrowsWithTheGraph) {
  GraphBuilder small_builder;
  small_builder.AddEdge(0, 1);
  const Graph small = small_builder.Build().value();
  GraphBuilder big_builder;
  for (NodeId u = 0; u < 1000; ++u) big_builder.AddEdge(u, u + 1);
  const Graph big = big_builder.Build().value();
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, MemoryBytesIncludesLabels) {
  GraphBuilder labeled_builder;
  labeled_builder.AddEdge("Pasta", "Italy");
  const Graph labeled = labeled_builder.Build().value();
  GraphBuilder numeric_builder;
  numeric_builder.AddEdge(0, 1);
  const Graph numeric = numeric_builder.Build().value();
  // Same topology, but the labeled graph carries its dictionary.
  ASSERT_EQ(labeled.num_nodes(), numeric.num_nodes());
  ASSERT_EQ(labeled.num_edges(), numeric.num_edges());
  EXPECT_GT(labeled.MemoryBytes(), numeric.MemoryBytes());
}

TEST(GraphTest, GraphIsCopyable) {
  const Graph g = Triangle();
  const Graph copy = g;  // value semantics for snapshots
  EXPECT_EQ(copy.num_edges(), 3u);
  EXPECT_TRUE(copy.HasEdge(2, 0));
}

}  // namespace
}  // namespace cyclerank
