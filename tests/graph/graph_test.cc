#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph Triangle() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return builder.Build().value();
}

TEST(GraphTest, DefaultGraphIsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.IsValidNode(0));
}

TEST(GraphTest, BasicCounts) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
}

TEST(GraphTest, HasEdgeExactness) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  const Graph g = Triangle();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
  EXPECT_FALSE(g.HasEdge(kInvalidNode, 0));
}

TEST(GraphTest, IsValidNodeBoundary) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.IsValidNode(0));
  EXPECT_TRUE(g.IsValidNode(2));
  EXPECT_FALSE(g.IsValidNode(3));
  EXPECT_FALSE(g.IsValidNode(kInvalidNode));
}

TEST(GraphTest, NeighborSpansViewCorrectMemory) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build().value();
  const auto row0 = g.OutNeighbors(0);
  const auto row1 = g.OutNeighbors(1);
  const auto row2 = g.OutNeighbors(2);
  EXPECT_EQ(row0.size(), 2u);
  EXPECT_EQ(row1.size(), 1u);
  EXPECT_EQ(row2.size(), 0u);
  EXPECT_EQ(row1[0], 2u);
}

TEST(GraphTest, FindNodeOnLabeledGraph) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  const Graph g = builder.Build().value();
  EXPECT_NE(g.FindNode("Pasta"), kInvalidNode);
  EXPECT_EQ(g.FindNode("Missing"), kInvalidNode);
  EXPECT_EQ(g.NodeName(g.FindNode("Italy")), "Italy");
}

TEST(GraphTest, MemoryBytesOfEmptyGraphIsJustTheObject) {
  const Graph g;
  EXPECT_EQ(g.MemoryBytes(), sizeof(Graph));
}

TEST(GraphTest, MemoryBytesAccountsForCsrArrays) {
  // Unlabeled n-node graph: two offset arrays of n+1 uint64 plus two
  // adjacency arrays of m NodeIds — the accounting is exact, by element
  // count, so admission decisions are deterministic.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build().value();
  const size_t n = g.num_nodes();
  const size_t m = g.num_edges();
  EXPECT_EQ(g.MemoryBytes(), sizeof(Graph) + 2 * (n + 1) * sizeof(uint64_t) +
                                 2 * m * sizeof(NodeId));
}

TEST(GraphTest, MemoryBytesGrowsWithTheGraph) {
  GraphBuilder small_builder;
  small_builder.AddEdge(0, 1);
  const Graph small = small_builder.Build().value();
  GraphBuilder big_builder;
  for (NodeId u = 0; u < 1000; ++u) big_builder.AddEdge(u, u + 1);
  const Graph big = big_builder.Build().value();
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, MemoryBytesIncludesLabels) {
  GraphBuilder labeled_builder;
  labeled_builder.AddEdge("Pasta", "Italy");
  const Graph labeled = labeled_builder.Build().value();
  GraphBuilder numeric_builder;
  numeric_builder.AddEdge(0, 1);
  const Graph numeric = numeric_builder.Build().value();
  // Same topology, but the labeled graph carries its dictionary.
  ASSERT_EQ(labeled.num_nodes(), numeric.num_nodes());
  ASSERT_EQ(labeled.num_edges(), numeric.num_edges());
  EXPECT_GT(labeled.MemoryBytes(), numeric.MemoryBytes());
}

TEST(GraphTest, GraphIsCopyable) {
  const Graph g = Triangle();
  const Graph copy = g;  // value semantics for snapshots
  EXPECT_EQ(copy.num_edges(), 3u);
  EXPECT_TRUE(copy.HasEdge(2, 0));
}

TEST(GraphCodecTest, NumericRoundTripIsBitIdentical) {
  GraphBuilder builder;
  builder.ReserveNodes(10);  // isolated tail nodes survive the codec
  for (NodeId u = 0; u < 7; ++u) {
    builder.AddEdge(u, (u * 3 + 1) % 7);
    builder.AddEdge(u, (u + 1) % 7);
  }
  const Graph g = builder.Build().value();
  const std::string bytes = g.Serialize();
  const Graph decoded = Graph::Deserialize(bytes).value();
  EXPECT_EQ(decoded.num_nodes(), g.num_nodes());
  EXPECT_EQ(decoded.num_edges(), g.num_edges());
  EXPECT_EQ(decoded.MemoryBytes(), g.MemoryBytes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(decoded.OutDegree(u), g.OutDegree(u));
    ASSERT_EQ(decoded.InDegree(u), g.InDegree(u));
  }
  // Bit-identical: re-serializing yields the same bytes.
  EXPECT_EQ(decoded.Serialize(), bytes);
}

TEST(GraphCodecTest, LabeledRoundTripKeepsTheDictionary) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  builder.AddEdge("Italy", "Rome");
  builder.AddEdge("Rome", "Pasta");
  const Graph g = builder.Build().value();
  const std::string bytes = g.Serialize();
  const Graph decoded = Graph::Deserialize(bytes).value();
  ASSERT_NE(decoded.labels(), nullptr);
  EXPECT_EQ(decoded.NodeName(0), "Pasta");
  EXPECT_EQ(decoded.FindNode("Rome"), g.FindNode("Rome"));
  EXPECT_EQ(decoded.MemoryBytes(), g.MemoryBytes());
  EXPECT_EQ(decoded.Serialize(), bytes);
}

TEST(GraphCodecTest, EmptyGraphRoundTrips) {
  const Graph g;
  const Graph decoded = Graph::Deserialize(g.Serialize()).value();
  EXPECT_EQ(decoded.num_nodes(), 0u);
  EXPECT_EQ(decoded.MemoryBytes(), g.MemoryBytes());
}

TEST(GraphCodecTest, RejectsCorruptBuffers) {
  const std::string bytes = Triangle().Serialize();
  // Wrong magic.
  EXPECT_EQ(Graph::Deserialize("not a graph").status().code(),
            StatusCode::kParseError);
  // Truncations at every prefix length parse-fail, never crash.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(Graph::Deserialize(bytes.substr(0, len)).ok());
  }
  // Trailing junk is rejected too — a concatenated or overwritten file
  // must not silently decode its prefix.
  EXPECT_FALSE(Graph::Deserialize(bytes + "x").ok());
  // A neighbor id past the node count is caught by CSR validation.
  std::string tampered = bytes;
  // out_targets elements follow the magic + out_offsets array; flip the
  // first target to an id far out of range (little-endian, so the byte
  // after the 8-byte count is the low byte of element 0).
  const size_t out_targets_pos =
      6 /* magic */ + 8 + 4 * sizeof(uint64_t) /* offsets */ + 8;
  tampered[out_targets_pos] = '\xee';
  tampered[out_targets_pos + 1] = '\xee';
  EXPECT_FALSE(Graph::Deserialize(tampered).ok());
}

}  // namespace
}  // namespace cyclerank
