#include "graph/label_map.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(LabelMapTest, AssignsDenseIdsInInsertionOrder) {
  LabelMap map;
  EXPECT_EQ(map.GetOrAdd("a"), 0u);
  EXPECT_EQ(map.GetOrAdd("b"), 1u);
  EXPECT_EQ(map.GetOrAdd("c"), 2u);
  EXPECT_EQ(map.size(), 3u);
}

TEST(LabelMapTest, GetOrAddIsIdempotent) {
  LabelMap map;
  const NodeId id = map.GetOrAdd("Pasta");
  EXPECT_EQ(map.GetOrAdd("Pasta"), id);
  EXPECT_EQ(map.size(), 1u);
}

TEST(LabelMapTest, FindReturnsNulloptForUnknown) {
  LabelMap map;
  map.GetOrAdd("x");
  EXPECT_FALSE(map.Find("y").has_value());
  ASSERT_TRUE(map.Find("x").has_value());
  EXPECT_EQ(*map.Find("x"), 0u);
}

TEST(LabelMapTest, LabelOfRoundTrips) {
  LabelMap map;
  map.GetOrAdd("Freddie Mercury");
  map.GetOrAdd("Queen (band)");
  EXPECT_EQ(map.LabelOf(0), "Freddie Mercury");
  EXPECT_EQ(map.LabelOf(1), "Queen (band)");
}

TEST(LabelMapTest, LabelsAreCaseSensitive) {
  LabelMap map;
  const NodeId a = map.GetOrAdd("pasta");
  const NodeId b = map.GetOrAdd("Pasta");
  EXPECT_NE(a, b);
}

TEST(LabelMapTest, HandlesUtf8Labels) {
  LabelMap map;
  const NodeId id = map.GetOrAdd("Ère post-vérité");
  EXPECT_EQ(map.LabelOf(id), "Ère post-vérité");
  EXPECT_EQ(*map.Find("Ère post-vérité"), id);
}

TEST(LabelMapTest, EmptyMap) {
  LabelMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Find("anything").has_value());
}

TEST(LabelMapTest, ManyLabels) {
  LabelMap map;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.GetOrAdd("node-" + std::to_string(i)),
              static_cast<NodeId>(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(*map.Find("node-537"), 537u);
}

}  // namespace
}  // namespace cyclerank
