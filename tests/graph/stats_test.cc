#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph Sample() {
  // 0 <-> 1, 1 -> 2, 3 isolated.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.ReserveNodes(4);
  return builder.Build().value();
}

TEST(StatsTest, CountsNodesAndEdges) {
  const GraphStats stats = ComputeGraphStats(Sample());
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.75);
}

TEST(StatsTest, DegreeExtremes) {
  const GraphStats stats = ComputeGraphStats(Sample());
  EXPECT_EQ(stats.max_out_degree, 2u);  // node 1
  EXPECT_EQ(stats.max_in_degree, 1u);
}

TEST(StatsTest, DanglingSourceIsolated) {
  const GraphStats stats = ComputeGraphStats(Sample());
  EXPECT_EQ(stats.dangling_nodes, 2u);  // 2 and 3 (out-degree 0)
  EXPECT_EQ(stats.source_nodes, 1u);    // 3 (in-degree 0)
  EXPECT_EQ(stats.isolated_nodes, 1u);  // 3
}

TEST(StatsTest, Reciprocity) {
  const GraphStats stats = ComputeGraphStats(Sample());
  // Edges 0->1 and 1->0 are reciprocated, 1->2 is not: 2/3.
  EXPECT_NEAR(stats.reciprocity, 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, FullyReciprocalGraph) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  const GraphStats stats = ComputeGraphStats(builder.Build().value());
  EXPECT_DOUBLE_EQ(stats.reciprocity, 1.0);
}

TEST(StatsTest, SccSummary) {
  const GraphStats stats = ComputeGraphStats(Sample());
  // Components: {0,1}, {2}, {3}.
  EXPECT_EQ(stats.num_sccs, 3u);
  EXPECT_EQ(stats.largest_scc_size, 2u);
}

TEST(StatsTest, EmptyGraph) {
  const GraphStats stats = ComputeGraphStats(Graph());
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(stats.reciprocity, 0.0);
}

TEST(StatsTest, ToStringContainsKeyFields) {
  const std::string text = ComputeGraphStats(Sample()).ToString();
  EXPECT_NE(text.find("nodes: 4"), std::string::npos);
  EXPECT_NE(text.find("edges: 3"), std::string::npos);
  EXPECT_NE(text.find("reciprocity"), std::string::npos);
}

TEST(StatsTest, OutDegreeHistogram) {
  const auto hist = OutDegreeHistogram(Sample());
  // Degrees: node0=1, node1=2, node2=0, node3=0.
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(StatsTest, InDegreeHistogram) {
  const auto hist = InDegreeHistogram(Sample());
  // In-degrees: 1,1,1,0.
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
}

TEST(StatsTest, HistogramSumsToNodeCount) {
  const Graph g = Sample();
  uint64_t total = 0;
  for (uint64_t count : OutDegreeHistogram(g)) total += count;
  EXPECT_EQ(total, g.num_nodes());
}

}  // namespace
}  // namespace cyclerank
