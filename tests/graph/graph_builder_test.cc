#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(GraphBuilderTest, EmptyBuilderProducesEmptyGraph) {
  GraphBuilder builder;
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, NumericEdgesDefineNodeRange) {
  GraphBuilder builder;
  builder.AddEdge(0, 5);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.num_nodes(), 6u);  // max id 5 -> 6 nodes
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(5, 0));
}

TEST(GraphBuilderTest, ReserveNodesAllowsIsolatedNodes) {
  GraphBuilder builder;
  builder.ReserveNodes(10);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
  EXPECT_EQ(g.InDegree(9), 0u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdgesByDefault) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, KeepsParallelEdgesWhenDisabled) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  GraphBuildOptions options;
  options.deduplicate = false;
  const Graph g = builder.Build(options).value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, DropsSelfLoopsByDefault) {
  GraphBuilder builder;
  builder.AddEdge(3, 3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(3, 3));
}

TEST(GraphBuilderTest, KeepsSelfLoopsWhenRequested) {
  GraphBuilder builder;
  builder.AddEdge(3, 3);
  GraphBuildOptions options;
  options.drop_self_loops = false;
  const Graph g = builder.Build(options).value();
  EXPECT_TRUE(g.HasEdge(3, 3));
}

TEST(GraphBuilderTest, NeighborsAreSortedAscending) {
  GraphBuilder builder;
  builder.AddEdge(0, 9);
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 7);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  const auto row = g.OutNeighbors(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 3u);
  EXPECT_EQ(row[2], 7u);
  EXPECT_EQ(row[3], 9u);
}

TEST(GraphBuilderTest, InNeighborsMirrorOutEdges) {
  GraphBuilder builder;
  builder.AddEdge(2, 0);
  builder.AddEdge(1, 0);
  builder.AddEdge(3, 0);
  const Graph g = builder.Build().value();
  const auto row = g.InNeighbors(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 3u);
  EXPECT_EQ(g.InDegree(0), 3u);
  EXPECT_EQ(g.OutDegree(0), 0u);
}

TEST(GraphBuilderTest, LabeledModeBuildsLabelMap) {
  GraphBuilder builder;
  builder.AddEdge("a", "b");
  builder.AddEdge("b", "c");
  const Graph g = builder.Build().value();
  ASSERT_NE(g.labels(), nullptr);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.NodeName(0), "a");
  EXPECT_NE(g.FindNode("c"), kInvalidNode);
  EXPECT_TRUE(g.HasEdge(g.FindNode("a"), g.FindNode("b")));
}

TEST(GraphBuilderTest, UnlabeledGraphNamesAreIds) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(g.labels(), nullptr);
  EXPECT_EQ(g.NodeName(1), "1");
  EXPECT_EQ(g.FindNode("1"), kInvalidNode);
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g1 = builder.Build().value();
  EXPECT_EQ(g1.num_edges(), 1u);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g2 = builder.Build().value();
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphBuilderTest, BuildSharedReturnsSharedPtr) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  GraphPtr g = builder.BuildShared().value();
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphBuilderTest, PendingEdgesCountsBeforeBuild) {
  GraphBuilder builder;
  EXPECT_EQ(builder.PendingEdges(), 0u);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  EXPECT_EQ(builder.PendingEdges(), 2u);
}

}  // namespace
}  // namespace cyclerank
