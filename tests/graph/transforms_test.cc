#include "graph/transforms.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph Path3() {
  GraphBuilder builder;
  builder.AddEdge("a", "b");
  builder.AddEdge("b", "c");
  return builder.Build().value();
}

TEST(TransposeTest, ReversesEveryEdge) {
  const Graph g = Path3();
  const Graph t = Transpose(g).value();
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.HasEdge(t.FindNode("b"), t.FindNode("a")));
  EXPECT_TRUE(t.HasEdge(t.FindNode("c"), t.FindNode("b")));
  EXPECT_FALSE(t.HasEdge(t.FindNode("a"), t.FindNode("b")));
}

TEST(TransposeTest, PreservesLabels) {
  const Graph t = Transpose(Path3()).value();
  ASSERT_NE(t.labels(), nullptr);
  EXPECT_EQ(t.NodeName(0), "a");
}

TEST(TransposeTest, InvolutionOnGeneratedGraph) {
  ErdosRenyiConfig config;
  config.num_nodes = 80;
  config.edge_prob = 0.04;
  config.seed = 5;
  const Graph g = GenerateErdosRenyi(config).value();
  const Graph tt = Transpose(Transpose(g).value()).value();
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.OutNeighbors(u);
    const auto b = tt.OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(TransposeTest, DegreesSwap) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 3);
  const Graph g = builder.Build().value();
  const Graph t = Transpose(g).value();
  EXPECT_EQ(t.InDegree(0), 3u);
  EXPECT_EQ(t.OutDegree(0), 0u);
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  const Graph g = builder.Build().value();
  const Graph sub = InducedSubgraph(g, {0, 1, 2}).value();
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 2->3 and 3->0 dropped
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
}

TEST(InducedSubgraphTest, RemapsInGivenOrder) {
  GraphBuilder builder;
  builder.AddEdge("x", "y");
  builder.AddEdge("y", "z");
  const Graph g = builder.Build().value();
  // Order: z, y -> new ids 0=z, 1=y; edge y->z becomes 1->0.
  const Graph sub =
      InducedSubgraph(g, {g.FindNode("z"), g.FindNode("y")}).value();
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.NodeName(0), "z");
  EXPECT_EQ(sub.NodeName(1), "y");
  EXPECT_TRUE(sub.HasEdge(1, 0));
}

TEST(InducedSubgraphTest, RejectsDuplicates) {
  const Graph g = Path3();
  EXPECT_EQ(InducedSubgraph(g, {0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InducedSubgraphTest, RejectsOutOfRange) {
  const Graph g = Path3();
  EXPECT_EQ(InducedSubgraph(g, {0, 99}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(InducedSubgraphTest, EmptySelectionIsEmptyGraph) {
  const Graph sub = InducedSubgraph(Path3(), {}).value();
  EXPECT_EQ(sub.num_nodes(), 0u);
}

TEST(SymmetrizeTest, AddsReverseEdges) {
  const Graph g = Path3();
  const Graph s = Symmetrize(g).value();
  EXPECT_EQ(s.num_edges(), 4u);
  EXPECT_TRUE(s.HasEdge(1, 0));
  EXPECT_TRUE(s.HasEdge(2, 1));
}

TEST(SymmetrizeTest, AlreadySymmetricUnchangedCount) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  const Graph s = Symmetrize(builder.Build().value()).value();
  EXPECT_EQ(s.num_edges(), 2u);
}

TEST(PermuteTest, RelabelsNodes) {
  const Graph g = Path3();  // a->b->c with ids 0,1,2
  // order = {2,0,1}: new node 0 is old 2 ("c"), new 1 is old 0 ("a").
  const Graph p = Permute(g, {2, 0, 1}).value();
  EXPECT_EQ(p.NodeName(0), "c");
  EXPECT_EQ(p.NodeName(1), "a");
  EXPECT_EQ(p.NodeName(2), "b");
  // Edge a->b (old 0->1) becomes new 1->2.
  EXPECT_TRUE(p.HasEdge(1, 2));
  // Edge b->c (old 1->2) becomes new 2->0.
  EXPECT_TRUE(p.HasEdge(2, 0));
  EXPECT_EQ(p.num_edges(), 2u);
}

TEST(PermuteTest, IdentityPermutation) {
  const Graph g = Path3();
  const Graph p = Permute(g, {0, 1, 2}).value();
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_TRUE(p.HasEdge(1, 2));
}

TEST(PermuteTest, RejectsNonPermutation) {
  const Graph g = Path3();
  EXPECT_EQ(Permute(g, {0, 0, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Permute(g, {0, 1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Permute(g, {0, 1, 5}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cyclerank
