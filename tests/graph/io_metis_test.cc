#include "graph/io_metis.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "graph/transforms.h"

namespace cyclerank {
namespace {

Result<Graph> Parse(const std::string& text) {
  std::istringstream in(text);
  return ReadMetis(in);
}

TEST(MetisTest, ParsesAdjacencyLines) {
  // Triangle: 3 nodes, 3 undirected edges, each listed from both sides.
  const Graph g = Parse("3 3\n2 3\n1 3\n1 2\n").value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);  // both directions materialized
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(MetisTest, EmptyAdjacencyLinesAllowed) {
  const Graph g = Parse("3 1\n2\n1\n\n").value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(MetisTest, CommentsSkipped) {
  const Graph g = Parse("% a metis file\n2 1\n2\n1\n").value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(MetisTest, RejectsWeightedHeader) {
  EXPECT_EQ(Parse("3 3 011\n").status().code(), StatusCode::kUnimplemented);
}

TEST(MetisTest, RejectsOutOfRangeNeighbour) {
  EXPECT_EQ(Parse("2 1\n3\n\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Parse("2 1\n0\n\n").status().code(), StatusCode::kParseError);
}

TEST(MetisTest, RejectsMissingLines) {
  EXPECT_EQ(Parse("3 1\n2\n").status().code(), StatusCode::kParseError);
}

TEST(MetisTest, RejectsEdgeCountMismatch) {
  EXPECT_EQ(Parse("2 5\n2\n1\n").status().code(), StatusCode::kParseError);
}

TEST(MetisTest, RejectsTrailingData) {
  EXPECT_EQ(Parse("2 1\n2\n1\n1 2\n").status().code(),
            StatusCode::kParseError);
}

TEST(MetisTest, WriteRequiresSymmetry) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // no reverse
  const Graph g = builder.Build().value();
  std::ostringstream out;
  EXPECT_EQ(WriteMetis(g, out).code(), StatusCode::kInvalidArgument);
}

TEST(MetisTest, SymmetrizedRoundTrip) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const Graph directed = builder.Build().value();
  const Graph g = Symmetrize(directed).value();
  std::ostringstream out;
  ASSERT_TRUE(WriteMetis(g, out).ok());
  const Graph g2 = Parse(out.str()).value();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) EXPECT_TRUE(g2.HasEdge(u, v));
  }
}

TEST(MetisTest, DispatchThroughFormatEnum) {
  EXPECT_EQ(GraphFormatFromPath("mesh.metis").value(), GraphFormat::kMetis);
  EXPECT_EQ(GraphFormatToString(GraphFormat::kMetis), "metis");
  const Graph g =
      ReadGraphFromString("2 1\n2\n1\n", GraphFormat::kMetis).value();
  EXPECT_EQ(g.num_edges(), 2u);
  const std::string text = WriteGraphToString(g, GraphFormat::kMetis).value();
  EXPECT_EQ(ReadGraphFromString(text, GraphFormat::kMetis).value().num_edges(),
            2u);
}

TEST(MetisTest, SniffNeverPicksMetis) {
  // The METIS header is indistinguishable from ASD's; sniffing must stay
  // deterministic and pick one of the demo's own formats.
  const GraphFormat format = SniffGraphFormat("2 1\n2\n1\n");
  EXPECT_NE(format, GraphFormat::kMetis);
}

}  // namespace
}  // namespace cyclerank
