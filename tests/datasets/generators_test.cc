#include "datasets/generators.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/scc.h"
#include "graph/stats.h"

namespace cyclerank {
namespace {

TEST(ErdosRenyiTest, DeterministicForSeed) {
  ErdosRenyiConfig config;
  config.num_nodes = 100;
  config.edge_prob = 0.05;
  config.seed = 42;
  const Graph a = GenerateErdosRenyi(config).value();
  const Graph b = GenerateErdosRenyi(config).value();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto ra = a.OutNeighbors(u);
    const auto rb = b.OutNeighbors(u);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
  }
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  ErdosRenyiConfig config;
  config.num_nodes = 500;
  config.edge_prob = 0.02;
  config.seed = 7;
  const Graph g = GenerateErdosRenyi(config).value();
  const double expected = 500.0 * 499.0 * 0.02;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyiTest, ZeroProbabilityYieldsNoEdges) {
  ErdosRenyiConfig config;
  config.num_nodes = 50;
  config.edge_prob = 0.0;
  const Graph g = GenerateErdosRenyi(config).value();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 50u);
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  ErdosRenyiConfig config;
  config.num_nodes = 80;
  config.edge_prob = 0.2;
  const Graph g = GenerateErdosRenyi(config).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_FALSE(g.HasEdge(u, u));
}

TEST(ErdosRenyiTest, RejectsBadConfig) {
  ErdosRenyiConfig config;
  config.num_nodes = 0;
  EXPECT_FALSE(GenerateErdosRenyi(config).ok());
  config.num_nodes = 10;
  config.edge_prob = 1.5;
  EXPECT_FALSE(GenerateErdosRenyi(config).ok());
}

TEST(ErdosRenyiMTest, ExactEdgeCount) {
  const Graph g = GenerateErdosRenyiM(100, 500, 3).value();
  EXPECT_EQ(g.num_edges(), 500u);
  EXPECT_EQ(g.num_nodes(), 100u);
}

TEST(ErdosRenyiMTest, RejectsImpossibleEdgeCount) {
  EXPECT_FALSE(GenerateErdosRenyiM(3, 100, 1).ok());
}

TEST(BarabasiAlbertTest, ProducesSkewedInDegrees) {
  BarabasiAlbertConfig config;
  config.num_nodes = 1000;
  config.edges_per_node = 3;
  config.reciprocity = 0.2;
  config.seed = 5;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const GraphStats stats = ComputeGraphStats(g);
  // Preferential attachment yields hubs far above the mean in-degree.
  EXPECT_GT(stats.max_in_degree, 10 * stats.avg_degree);
}

TEST(BarabasiAlbertTest, ReciprocityCreatesCycles) {
  BarabasiAlbertConfig config;
  config.num_nodes = 200;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 9;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const SccResult scc = StronglyConnectedComponents(g);
  const auto sizes = scc.ComponentSizes();
  uint32_t largest = 0;
  for (uint32_t s : sizes) largest = std::max(largest, s);
  EXPECT_GT(largest, g.num_nodes() / 4);
}

TEST(BarabasiAlbertTest, ZeroReciprocityNearAcyclic) {
  BarabasiAlbertConfig config;
  config.num_nodes = 200;
  config.edges_per_node = 3;
  config.reciprocity = 0.0;
  config.seed = 9;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const SccResult scc = StronglyConnectedComponents(g);
  // Apart from the small seed ring, attachment edges always point backward
  // in time: components stay tiny.
  const auto sizes = scc.ComponentSizes();
  uint32_t largest = 0;
  for (uint32_t s : sizes) largest = std::max(largest, s);
  EXPECT_LE(largest, config.edges_per_node + 1);
}

TEST(WattsStrogatzTest, DegreeStructure) {
  WattsStrogatzConfig config;
  config.num_nodes = 100;
  config.k = 4;
  config.rewire_prob = 0.0;
  const Graph g = GenerateWattsStrogatz(config).value();
  EXPECT_EQ(g.num_edges(), 400u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(g.OutDegree(u), 4u);
  // Without rewiring the ring is strongly connected.
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(WattsStrogatzTest, RewiringChangesStructure) {
  WattsStrogatzConfig base, rewired;
  base.num_nodes = rewired.num_nodes = 100;
  base.k = rewired.k = 4;
  base.rewire_prob = 0.0;
  rewired.rewire_prob = 0.5;
  rewired.seed = base.seed = 3;
  const Graph a = GenerateWattsStrogatz(base).value();
  const Graph b = GenerateWattsStrogatz(rewired).value();
  size_t differing = 0;
  for (NodeId u = 0; u < 100; ++u) {
    if (!std::equal(a.OutNeighbors(u).begin(), a.OutNeighbors(u).end(),
                    b.OutNeighbors(u).begin(), b.OutNeighbors(u).end())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50u);
}

TEST(WattsStrogatzTest, RejectsBadK) {
  WattsStrogatzConfig config;
  config.num_nodes = 10;
  config.k = 0;
  EXPECT_FALSE(GenerateWattsStrogatz(config).ok());
  config.k = 10;
  EXPECT_FALSE(GenerateWattsStrogatz(config).ok());
}

TEST(SbmTest, IntraBlockDenserThanInterBlock) {
  SbmConfig config;
  config.block_sizes = {100, 100};
  config.intra_prob = 0.1;
  config.inter_prob = 0.005;
  config.seed = 13;
  const Graph g = GenerateSbm(config).value();
  uint64_t intra = 0, inter = 0;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if ((u < 100) == (v < 100)) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 5 * inter);
}

TEST(SbmTest, RejectsEmptyBlocks) {
  SbmConfig config;
  config.block_sizes = {};
  EXPECT_FALSE(GenerateSbm(config).ok());
}

TEST(WikiLikeTest, HubsDominateInDegree) {
  WikiLikeConfig config;
  config.seed = 20;
  const Graph g = GenerateWikiLike(config).value();
  const NodeId n_articles =
      static_cast<NodeId>(config.num_clusters) * config.cluster_size;
  // Every hub's in-degree exceeds every regular article's in-degree.
  uint32_t min_hub = static_cast<uint32_t>(-1);
  uint32_t max_article = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u >= n_articles) {
      min_hub = std::min(min_hub, g.InDegree(u));
    } else {
      max_article = std::max(max_article, g.InDegree(u));
    }
  }
  EXPECT_GT(min_hub, max_article);
}

TEST(WikiLikeTest, SizeMatchesConfig) {
  WikiLikeConfig config;
  config.num_clusters = 4;
  config.cluster_size = 25;
  config.num_hubs = 3;
  const Graph g = GenerateWikiLike(config).value();
  EXPECT_EQ(g.num_nodes(), 103u);
}

TEST(AmazonLikeTest, ReciprocityHigherInsideGenres) {
  AmazonLikeConfig config;
  config.seed = 4;
  const Graph g = GenerateAmazonLike(config).value();
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_GT(stats.reciprocity, 0.3);  // co-purchases mostly mutual
}

TEST(BarabasiAlbertTest, GoldenEdgeListIsPortable) {
  // Pins the exact generated edge list. The target-selection loop must not
  // depend on any implementation-defined order (it once iterated an
  // unordered_set while drawing reciprocity coin flips per target, so the
  // graph differed across standard libraries); a changed stdlib, platform,
  // or refactor must keep producing byte-identical graphs for a fixed seed.
  BarabasiAlbertConfig config;
  config.num_nodes = 12;
  config.edges_per_node = 2;
  config.reciprocity = 0.5;
  config.seed = 123;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const std::vector<std::pair<NodeId, NodeId>> expected = {
      {0, 1},  {0, 3},  {0, 6},  {1, 2},  {1, 3},  {1, 7},  {2, 0},  {2, 4},
      {2, 6},  {3, 0},  {3, 1},  {3, 8},  {4, 2},  {4, 3},  {4, 7},  {4, 8},
      {5, 1},  {5, 2},  {6, 0},  {6, 2},  {6, 10}, {6, 11}, {7, 1},  {7, 4},
      {8, 3},  {8, 4},  {9, 3},  {9, 4},  {10, 4}, {10, 6}, {11, 2}, {11, 6},
  };
  ASSERT_EQ(g.num_nodes(), 12u);
  ASSERT_EQ(g.num_edges(), expected.size());
  std::vector<std::pair<NodeId, NodeId>> actual;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) actual.emplace_back(u, v);
  }
  EXPECT_EQ(actual, expected);
}

TEST(TwitterLikeTest, LowReciprocityInteractions) {
  TwitterLikeConfig config;
  config.seed = 6;
  const Graph g = GenerateTwitterLike(config).value();
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_LT(stats.reciprocity, 0.4);
  EXPECT_EQ(g.num_nodes(),
            config.num_communities * config.community_size +
                config.num_celebrities);
}

TEST(TwitterLikeTest, CelebritiesCollectMentions) {
  TwitterLikeConfig config;
  config.seed = 12;
  const Graph g = GenerateTwitterLike(config).value();
  const NodeId n_users =
      static_cast<NodeId>(config.num_communities) * config.community_size;
  double avg_user_in = 0;
  for (NodeId u = 0; u < n_users; ++u) avg_user_in += g.InDegree(u);
  avg_user_in /= n_users;
  for (uint32_t c = 0; c < config.num_celebrities; ++c) {
    EXPECT_GT(g.InDegree(n_users + c), 5 * avg_user_in);
  }
}

}  // namespace
}  // namespace cyclerank
