// Regression tests pinning the embedded corpora to the paper's tables.
// The benches in bench/ print these tables; the tests here keep the corpus
// wiring honest (every expectation below is a row of Tables I-III).

#include "datasets/corpus.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"

namespace cyclerank {
namespace {

std::vector<std::string> TopLabels(const Graph& g, const RankedList& list,
                                   size_t k, NodeId skip = kInvalidNode) {
  std::vector<std::string> out;
  for (const ScoredNode& entry : list) {
    if (entry.node == skip) continue;
    out.push_back(g.NodeName(entry.node));
    if (out.size() == k) break;
  }
  return out;
}

// ---- Table I ----------------------------------------------------------------

TEST(EnwikiMiniTest, PageRankTop5MatchesPaper) {
  const Graph g = EnwikiMini().value();
  PageRankOptions options;
  options.alpha = 0.85;
  const auto pr = ComputePageRank(g, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(pr.scores), 5),
            (std::vector<std::string>{"United States", "Animal", "Arthropod",
                                      "Association football", "Insect"}));
}

TEST(EnwikiMiniTest, CycleRankFreddieMatchesPaper) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Freddie Mercury");
  ASSERT_NE(ref, kInvalidNode);
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(cr.scores), 5),
            (std::vector<std::string>{"Freddie Mercury", "Queen (band)",
                                      "Brian May", "Roger Taylor",
                                      "John Deacon"}));
}

TEST(EnwikiMiniTest, PprFreddieMatchesPaper) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Freddie Mercury");
  PageRankOptions options;
  options.alpha = 0.3;
  const auto ppr = ComputePersonalizedPageRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(ppr.scores), 5),
            (std::vector<std::string>{"Freddie Mercury", "Queen (band)",
                                      "The FM Tribute Concert", "HIV/AIDS",
                                      "Queen II"}));
}

TEST(EnwikiMiniTest, CycleRankPastaMatchesPaper) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Pasta");
  ASSERT_NE(ref, kInvalidNode);
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(cr.scores), 5),
            (std::vector<std::string>{"Pasta", "Italian cuisine", "Italy",
                                      "Spaghetti", "Flour"}));
}

TEST(EnwikiMiniTest, PprPastaMatchesPaper) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Pasta");
  PageRankOptions options;
  options.alpha = 0.3;
  const auto ppr = ComputePersonalizedPageRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(ppr.scores), 5),
            (std::vector<std::string>{"Pasta", "Bolognese sauce", "Carbonara",
                                      "Durum", "Italy"}));
}

TEST(EnwikiMiniTest, HubPathologyStructure) {
  // The hub that dominates global PageRank shares no cycle with either
  // reference article — the paper's central claim in miniature.
  const Graph g = EnwikiMini().value();
  const NodeId us = g.FindNode("United States");
  ASSERT_NE(us, kInvalidNode);
  for (const char* ref_label : {"Freddie Mercury", "Pasta"}) {
    CycleRankOptions options;
    options.max_cycle_length = 3;
    const auto cr =
        ComputeCycleRank(g, g.FindNode(ref_label), options).value();
    EXPECT_DOUBLE_EQ(cr.scores[us], 0.0) << ref_label;
  }
}

// ---- Table II ---------------------------------------------------------------

TEST(AmazonMiniTest, PageRankTop5MatchesPaper) {
  const Graph g = AmazonBooksMini().value();
  PageRankOptions options;
  options.alpha = 0.85;
  const auto pr = ComputePageRank(g, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(pr.scores), 5),
            (std::vector<std::string>{"Good to Great", "The Catcher in the Rye",
                                      "DSM-IV", "The Great Gatsby",
                                      "Lord of the Flies"}));
}

TEST(AmazonMiniTest, CycleRank1984MatchesPaper) {
  const Graph g = AmazonBooksMini().value();
  const NodeId ref = g.FindNode("1984");
  ASSERT_NE(ref, kInvalidNode);
  CycleRankOptions options;
  options.max_cycle_length = 5;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(cr.scores), 5, ref),
            (std::vector<std::string>{"Animal Farm", "Fahrenheit 451",
                                      "The Catcher in the Rye",
                                      "Brave New World", "Lord of the Flies"}));
}

TEST(AmazonMiniTest, Ppr1984MatchesPaper) {
  const Graph g = AmazonBooksMini().value();
  const NodeId ref = g.FindNode("1984");
  PageRankOptions options;
  options.alpha = 0.85;
  const auto ppr = ComputePersonalizedPageRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(ppr.scores), 5, ref),
            (std::vector<std::string>{
                "The Catcher in the Rye", "Lord of the Flies", "Animal Farm",
                "Fahrenheit 451", "To Kill a Mockingbird"}));
}

TEST(AmazonMiniTest, CycleRankFellowshipMatchesPaper) {
  const Graph g = AmazonBooksMini().value();
  const NodeId ref = g.FindNode("The Fellowship of the Ring");
  ASSERT_NE(ref, kInvalidNode);
  CycleRankOptions options;
  options.max_cycle_length = 5;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  EXPECT_EQ(TopLabels(g, ScoresToRankedList(cr.scores), 5, ref),
            (std::vector<std::string>{"The Hobbit", "The Return of the King",
                                      "The Silmarillion", "The Two Towers",
                                      "Unfinished Tales"}));
}

TEST(AmazonMiniTest, PprFellowshipShowsHarryPotterPathology) {
  // Paper order: Silmarillion, Hobbit, HP1, HP2, Return of the King. Our
  // miniature reproduces the *set* and the pathology (HP books inside the
  // PPR top-5, excluded from CycleRank); the within-set order differs and
  // is documented in EXPERIMENTS.md.
  const Graph g = AmazonBooksMini().value();
  const NodeId ref = g.FindNode("The Fellowship of the Ring");
  PageRankOptions options;
  options.alpha = 0.85;
  const auto ppr = ComputePersonalizedPageRank(g, ref, options).value();
  const auto top = TopLabels(g, ScoresToRankedList(ppr.scores), 5, ref);
  const std::vector<std::string> expected_set = {
      "The Silmarillion", "The Hobbit", "Harry Potter (Book 1)",
      "Harry Potter (Book 2)", "The Return of the King"};
  for (const std::string& label : expected_set) {
    EXPECT_NE(std::find(top.begin(), top.end(), label), top.end()) << label;
  }
}

TEST(AmazonMiniTest, HarryPotterExcludedFromCycleRank) {
  const Graph g = AmazonBooksMini().value();
  const NodeId ref = g.FindNode("The Fellowship of the Ring");
  CycleRankOptions options;
  options.max_cycle_length = 5;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  EXPECT_DOUBLE_EQ(cr.scores[g.FindNode("Harry Potter (Book 1)")], 0.0);
  EXPECT_DOUBLE_EQ(cr.scores[g.FindNode("Harry Potter (Book 2)")], 0.0);
}

// ---- Table III --------------------------------------------------------------

struct EditionExpectation {
  const char* language;
  std::vector<std::string> top;
};

class FakeNewsEditionTest
    : public ::testing::TestWithParam<EditionExpectation> {};

TEST_P(FakeNewsEditionTest, CycleRankTopMatchesPaperColumn) {
  const auto& expectation = GetParam();
  const Graph g = FakeNewsEdition(expectation.language).value();
  const std::string title = FakeNewsTitle(expectation.language).value();
  const NodeId ref = g.FindNode(title);
  ASSERT_NE(ref, kInvalidNode) << title;
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const auto cr = ComputeCycleRank(g, ref, options).value();
  const auto top = TopLabels(g, ScoresToRankedList(cr.scores), 5, ref);
  EXPECT_EQ(top, expectation.top);
}

INSTANTIATE_TEST_SUITE_P(
    AllEditions, FakeNewsEditionTest,
    ::testing::Values(
        EditionExpectation{"de",
                           {"Barack Obama", "Tagesschau.de", "Desinformation",
                            "Fake", "Donald Trump"}},
        EditionExpectation{"en",
                           {"CNN", "Facebook", "US pres. election, 2016",
                            "Propaganda", "Social media"}},
        EditionExpectation{"fr",
                           {"Ère post-vérité", "Donald Trump", "Facebook",
                            "Hoax", "Alex Jones (complotiste)"}},
        EditionExpectation{"it",
                           {"Disinformazione", "Post-verità", "Bufala",
                            "Debunker", "Clickbait"}},
        // nl and pl have fewer than five non-zero results — exactly as the
        // paper's Table III leaves those cells empty.
        EditionExpectation{"nl",
                           {"Facebook", "Journalistiek", "Hoax",
                            "Donald Trump"}},
        EditionExpectation{"pl",
                           {"Dezinformacja", "Propaganda",
                            "Media społecznościowe"}}),
    [](const auto& test_info) { return std::string(test_info.param.language); });

TEST(FakeNewsTest, LanguagesListedAndLoadable) {
  const auto& langs = FakeNewsLanguages();
  EXPECT_EQ(langs.size(), 6u);
  for (const std::string& lang : langs) {
    EXPECT_TRUE(FakeNewsEdition(lang).ok()) << lang;
    EXPECT_TRUE(FakeNewsTitle(lang).ok()) << lang;
  }
}

TEST(FakeNewsTest, UnknownLanguageRejected) {
  EXPECT_EQ(FakeNewsEdition("xx").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(FakeNewsTitle("xx").status().code(), StatusCode::kNotFound);
}

TEST(FakeNewsTest, LocalizedTitles) {
  EXPECT_EQ(FakeNewsTitle("de").value(), "Fake News");
  EXPECT_EQ(FakeNewsTitle("nl").value(), "Nepnieuws");
  EXPECT_EQ(FakeNewsTitle("en").value(), "Fake news");
}

}  // namespace
}  // namespace cyclerank
