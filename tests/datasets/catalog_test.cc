#include "datasets/catalog.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(CatalogTest, BuiltInHasAtLeastFiftyDatasets) {
  // "We provide 50 pre-loaded datasets from Wikipedia, Twitter, and
  // Amazon" (abstract).
  EXPECT_GE(DatasetCatalog::BuiltIn().size(), 50u);
}

TEST(CatalogTest, CoversAllThreeSources) {
  size_t wikipedia = 0, amazon = 0, twitter = 0, synthetic = 0;
  for (const DatasetInfo& info : DatasetCatalog::BuiltIn().List()) {
    if (info.source == "wikipedia") ++wikipedia;
    if (info.source == "amazon") ++amazon;
    if (info.source == "twitter") ++twitter;
    if (info.source == "synthetic") ++synthetic;
  }
  EXPECT_GE(wikipedia, 36u + 7u);  // 9 languages x 4 years + minis
  EXPECT_GE(amazon, 2u);
  EXPECT_GE(twitter, 2u);
  EXPECT_GE(synthetic, 4u);
}

TEST(CatalogTest, WikiLinkNamingMatchesPaperLanguagesAndYears) {
  const auto& catalog = DatasetCatalog::BuiltIn();
  for (const char* lang : {"de", "en", "es", "fr", "it", "nl", "pl", "ru",
                           "sv"}) {
    for (int year : {2003, 2008, 2013, 2018}) {
      const std::string name =
          "wikilink-" + std::string(lang) + "-" + std::to_string(year);
      EXPECT_TRUE(catalog.Info(name).ok()) << name;
    }
  }
}

TEST(CatalogTest, LoadsAndCachesGraphs) {
  auto& catalog = DatasetCatalog::BuiltIn();
  const GraphPtr a = catalog.Load("fakenews-en").value();
  const GraphPtr b = catalog.Load("fakenews-en").value();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // cached: same instance
  EXPECT_GT(a->num_nodes(), 0u);
}

TEST(CatalogTest, TableCorporaPresent) {
  auto& catalog = DatasetCatalog::BuiltIn();
  EXPECT_TRUE(catalog.Load("enwiki-mini-2018").ok());
  EXPECT_TRUE(catalog.Load("amazon-books-mini").ok());
  for (const char* lang : {"de", "en", "fr", "it", "nl", "pl"}) {
    EXPECT_TRUE(catalog.Load("fakenews-" + std::string(lang)).ok());
  }
}

TEST(CatalogTest, UnknownDatasetIsNotFound) {
  EXPECT_EQ(DatasetCatalog::BuiltIn().Load("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(DatasetCatalog::BuiltIn().Info("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ListIsSortedByName) {
  const auto list = DatasetCatalog::BuiltIn().List();
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].name, list[i].name);
  }
}

TEST(CatalogTest, RegisterCustomDataset) {
  DatasetCatalog catalog;  // fresh, empty
  EXPECT_EQ(catalog.size(), 0u);
  ASSERT_TRUE(catalog
                  .Register({"mine", "synthetic", "test graph"},
                            [] {
                              GraphBuilder builder;
                              builder.AddEdge(0, 1);
                              return builder.Build();
                            })
                  .ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.Load("mine").value()->num_edges(), 1u);
}

TEST(CatalogTest, RegisterRejectsDuplicatesAndBadInput) {
  DatasetCatalog catalog;
  auto factory = [] {
    GraphBuilder builder;
    builder.AddEdge(0, 1);
    return builder.Build();
  };
  ASSERT_TRUE(catalog.Register({"a", "synthetic", ""}, factory).ok());
  EXPECT_EQ(catalog.Register({"a", "synthetic", ""}, factory).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Register({"", "synthetic", ""}, factory).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.Register({"b", "synthetic", ""}, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, LaterSnapshotsAreLarger) {
  // WikiLinkGraphs grow over time; our stand-ins mirror that.
  auto& catalog = DatasetCatalog::BuiltIn();
  const GraphPtr g2003 = catalog.Load("wikilink-en-2003").value();
  const GraphPtr g2018 = catalog.Load("wikilink-en-2018").value();
  EXPECT_GT(g2018->num_nodes(), g2003->num_nodes());
}

TEST(CatalogTest, FreshCatalogCanTakeBuiltIns) {
  DatasetCatalog catalog;
  RegisterBuiltInDatasets(catalog);
  EXPECT_GE(catalog.size(), 50u);
}

}  // namespace
}  // namespace cyclerank
