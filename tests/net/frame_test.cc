// CYRQ1 framing + message-codec tests, including the hostile-input sweep:
// truncated, oversized, corrupt, and garbage byte streams must produce a
// typed protocol error — never a crash, never a bogus frame.

#include "net/frame.h"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/messages.h"
#include "platform/task.h"

namespace cyclerank {
namespace net {
namespace {

Frame MustDecodeOne(FrameDecoder& decoder) {
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Outcome::kFrame)
      << error.ToString();
  return frame;
}

TEST(FrameTest, RoundTripsPayloads) {
  const std::vector<std::string> payloads = {
      std::string(), std::string("x"), std::string("hello world"),
      std::string(100000, 'q'), std::string("\x00\xff\x7f\x80", 4)};
  for (const std::string& payload : payloads) {
    FrameDecoder decoder(0);
    decoder.Feed(EncodeFrame(0x42, payload));
    Frame frame = MustDecodeOne(decoder);
    EXPECT_EQ(frame.type, 0x42);
    EXPECT_EQ(frame.payload, payload);
    Status error;
    EXPECT_EQ(decoder.Next(&frame, &error),
              FrameDecoder::Outcome::kNeedMoreBytes);
  }
}

TEST(FrameTest, DecodesByteAtATime) {
  const std::string bytes =
      EncodeFrame(0x01, "abc") + EncodeFrame(0x02, "") + EncodeFrame(0x03,
      std::string(5000, 'z'));
  FrameDecoder decoder(0);
  std::vector<Frame> frames;
  for (const char byte : bytes) {
    decoder.Feed(std::string_view(&byte, 1));
    Frame frame;
    Status error;
    while (decoder.Next(&frame, &error) == FrameDecoder::Outcome::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "abc");
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].payload.size(), 5000u);
}

TEST(FrameTest, TruncatedFrameJustWaits) {
  const std::string bytes = EncodeFrame(0x01, "some payload here");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder(0);
    decoder.Feed(std::string_view(bytes).substr(0, cut));
    Frame frame;
    Status error;
    EXPECT_EQ(decoder.Next(&frame, &error),
              FrameDecoder::Outcome::kNeedMoreBytes)
        << "cut at " << cut;
    // The rest arrives: the frame completes.
    decoder.Feed(std::string_view(bytes).substr(cut));
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Outcome::kFrame);
    EXPECT_EQ(frame.payload, "some payload here");
  }
}

TEST(FrameTest, BadMagicPoisons) {
  FrameDecoder decoder(0);
  decoder.Feed("GET / HTTP/1.1\r\n\r\n");  // a confused web client
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
  // Poisoned for good: even valid bytes afterwards stay rejected.
  decoder.Feed(EncodeFrame(0x01, "ok"));
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
}

TEST(FrameTest, UnsupportedVersionPoisons) {
  std::string bytes = EncodeFrame(0x01, "payload");
  bytes[4] = 2;  // future version
  FrameDecoder decoder(0);
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
  EXPECT_EQ(error.code(), StatusCode::kUnimplemented);
}

TEST(FrameTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // Header claiming a 2^40-byte payload; only the header is ever sent.
  std::string bytes;
  bytes.append(kFrameMagic, sizeof(kFrameMagic));
  bytes.push_back(static_cast<char>(kProtocolVersion));
  bytes.push_back(0x01);
  uint64_t huge = uint64_t{1} << 40;
  while (huge >= 0x80) {
    bytes.push_back(static_cast<char>((huge & 0x7f) | 0x80));
    huge >>= 7;
  }
  bytes.push_back(static_cast<char>(huge));
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 20);
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OverlongVarintPoisons) {
  std::string bytes;
  bytes.append(kFrameMagic, sizeof(kFrameMagic));
  bytes.push_back(static_cast<char>(kProtocolVersion));
  bytes.push_back(0x01);
  for (int i = 0; i < 11; ++i) bytes.push_back(static_cast<char>(0x80));
  FrameDecoder decoder(0);
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
}

TEST(FrameTest, ChecksumMismatchPoisons) {
  std::string bytes = EncodeFrame(0x01, "pristine payload");
  bytes[bytes.size() - 3] ^= 0x01;  // flip one payload bit
  FrameDecoder decoder(0);
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error),
            FrameDecoder::Outcome::kProtocolError);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
}

TEST(FrameTest, MaxFrameBytesZeroMeansUnbounded) {
  FrameDecoder decoder(0);
  decoder.Feed(EncodeFrame(0x01, std::string(3u << 20, 'a')));
  EXPECT_EQ(MustDecodeOne(decoder).payload.size(), 3u << 20);
}

TEST(FrameTest, RandomGarbageNeverCrashes) {
  // Deterministic pseudo-random garbage: every prefix either waits for
  // more bytes or poisons with a real status — no crash, no accepted
  // frame (the odds of forging magic + checksum are negligible; if it
  // ever happens the seeds below make it reproducible).
  std::mt19937 rng(20260808);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder(1 << 16);
    std::string garbage(257, '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng() & 0xff);
    }
    decoder.Feed(garbage);
    Frame frame;
    Status error;
    const FrameDecoder::Outcome outcome = decoder.Next(&frame, &error);
    EXPECT_TRUE(outcome == FrameDecoder::Outcome::kProtocolError ||
                outcome == FrameDecoder::Outcome::kNeedMoreBytes);
    if (outcome == FrameDecoder::Outcome::kProtocolError) {
      EXPECT_FALSE(error.ok());
    }
  }
}

// ---- Message codecs -------------------------------------------------------

TEST(MessageTest, UploadDatasetRoundTrip) {
  UploadDatasetRequest msg;
  msg.request_id = 7;
  msg.name = "my-graph";
  msg.content = "a b\nb a\n";
  FrameDecoder decoder(0);
  decoder.Feed(EncodeUploadDatasetRequest(msg));
  const Frame frame = MustDecodeOne(decoder);
  EXPECT_EQ(frame.type, kUploadDatasetReq);
  const auto decoded = DecodeUploadDatasetRequest(frame.payload).value();
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.name, "my-graph");
  EXPECT_EQ(decoded.content, "a b\nb a\n");
  EXPECT_EQ(PeekRequestId(frame.payload), 7u);
}

TEST(MessageTest, SubmitQuerySetRoundTrip) {
  SubmitQuerySetRequest msg;
  msg.request_id = 99;
  TaskSpec spec;
  spec.dataset = "tiny";
  spec.algorithm = "cyclerank";
  spec.params.Set("source", "a");
  spec.params.Set("k", "3");
  msg.query_set.tasks = {spec, spec};
  FrameDecoder frame_decoder(0);
  frame_decoder.Feed(EncodeSubmitQuerySetRequest(msg));
  const auto decoded =
      DecodeSubmitQuerySetRequest(MustDecodeOne(frame_decoder).payload)
          .value();
  ASSERT_EQ(decoded.query_set.tasks.size(), 2u);
  EXPECT_EQ(decoded.query_set.tasks[0], spec);
  EXPECT_EQ(decoded.query_set.tasks[1], spec);
}

TEST(MessageTest, GetResultsResponseRoundTripIsBitIdentical) {
  GetResultsResponse msg;
  msg.request_id = 3;
  TaskResult result;
  result.task_id = "cmp/0";
  result.spec.dataset = "tiny";
  result.spec.algorithm = "pagerank";
  result.status = Status::OK();
  result.ranking = {{4, 0.123456789012345}, {1, 0.2}, {0, 1e-300}};
  result.seconds = 0.125;
  msg.results = {result};
  FrameDecoder decoder(0);
  decoder.Feed(EncodeGetResultsResponse(msg));
  const auto decoded =
      DecodeGetResultsResponse(MustDecodeOne(decoder).payload).value();
  ASSERT_EQ(decoded.results.size(), 1u);
  EXPECT_EQ(decoded.results[0].task_id, "cmp/0");
  EXPECT_EQ(decoded.results[0].ranking, result.ranking);  // exact doubles
  EXPECT_EQ(decoded.results[0].seconds, 0.125);
}

TEST(MessageTest, ErrorAndStatusRoundTrip) {
  ErrorMessage msg;
  msg.request_id = 12;
  msg.status = Status::Unavailable("too busy");
  FrameDecoder decoder(0);
  decoder.Feed(EncodeErrorMessage(msg));
  const Frame frame = MustDecodeOne(decoder);
  EXPECT_EQ(frame.type, kError);
  const auto decoded = DecodeErrorMessage(frame.payload).value();
  EXPECT_EQ(decoded.request_id, 12u);
  EXPECT_EQ(decoded.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.status.message(), "too busy");
}

TEST(MessageTest, EventRoundTrip) {
  EventMessage msg;
  msg.comparison.comparison_id = "cmp";
  msg.comparison.task_ids = {"cmp/0", "cmp/1"};
  msg.comparison.states = {TaskState::kCompleted, TaskState::kFailed};
  msg.comparison.completed = 1;
  msg.comparison.failed = 1;
  msg.comparison.done = true;
  FrameDecoder decoder(0);
  decoder.Feed(EncodeEventMessage(msg));
  const auto decoded = DecodeEventMessage(MustDecodeOne(decoder).payload)
                           .value();
  EXPECT_EQ(decoded.comparison.comparison_id, "cmp");
  ASSERT_EQ(decoded.comparison.states.size(), 2u);
  EXPECT_EQ(decoded.comparison.states[1], TaskState::kFailed);
  EXPECT_TRUE(decoded.comparison.done);
}

TEST(MessageTest, DecodersRejectTruncatedPayloads) {
  WaitRequest wait;
  wait.request_id = 5;
  wait.comparison_id = "cmp";
  wait.timeout_ms = 1000;
  FrameDecoder decoder(0);
  decoder.Feed(EncodeWaitRequest(wait));
  const Frame frame = MustDecodeOne(decoder);
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    const auto decoded =
        DecodeWaitRequest(std::string_view(frame.payload).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  }
}

TEST(MessageTest, DecodersRejectTrailingBytes) {
  StatsRequest stats;
  stats.request_id = 8;
  FrameDecoder decoder(0);
  decoder.Feed(EncodeStatsRequest(stats));
  const Frame frame = MustDecodeOne(decoder);
  EXPECT_TRUE(DecodeStatsRequest(frame.payload).ok());
  EXPECT_FALSE(DecodeStatsRequest(frame.payload + "x").ok());
}

TEST(MessageTest, StatusCodeOutOfDomainRejected) {
  // An ACK whose status-code byte is 200: the codec must refuse to forge
  // a StatusCode that does not exist.
  AckResponse ack;
  ack.request_id = 1;
  FrameDecoder decoder(0);
  decoder.Feed(EncodeAckResponse(kUploadDatasetResp, ack));
  Frame frame = MustDecodeOne(decoder);
  frame.payload[8] = static_cast<char>(200);  // after the u64 request id
  const auto decoded = DecodeAckResponse(frame.payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace net
}  // namespace cyclerank
