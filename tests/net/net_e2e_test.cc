// End-to-end tests of the network layer: a real `NetServer` on an
// ephemeral port, real TCP sockets, concurrent `NetClient`s — holding the
// acceptance line of the layer: everything a remote client reads is
// bit-identical to what the in-process gateway returns, N concurrent
// connections coalesce into single-flight kernel work, SUBSCRIBE delivers
// terminal-state pushes without polling, and hostile bytes produce an
// ERROR frame, never a dead server.

#include "net/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/messages.h"
#include "platform/gateway.h"
#include "platform/result_io.h"

namespace cyclerank {
namespace net {
namespace {

/// Counts kernel executions — the probe for cross-connection
/// single-flight coalescing.
class CountingAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "counting"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    runs_.fetch_add(1);
    // Stay in flight long enough that concurrent submissions overlap.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<double> scores(g.num_nodes());
    for (size_t i = 0; i < scores.size(); ++i) {
      scores[i] = request.alpha / (1.0 + static_cast<double>(i));
    }
    RankingOptions options;
    options.drop_zeros = false;
    return ScoresToRankedList(scores, options);
  }
  static std::atomic<int> runs_;
};

std::atomic<int> CountingAlgorithm::runs_{0};

/// Slow enough that a SUBSCRIBE lands before the terminal state does.
class SlowAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "slow"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& /*request*/) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::vector<double> scores(g.num_nodes(), 1.0);
    RankingOptions options;
    options.drop_zeros = false;
    return ScoresToRankedList(scores, options);
  }
};

class NetE2eTest : public ::testing::Test {
 protected:
  NetE2eTest() : store_(nullptr) {
    EXPECT_TRUE(
        registry_.Register(MakeAlgorithm(AlgorithmKind::kPageRank)).ok());
    EXPECT_TRUE(
        registry_.Register(MakeAlgorithm(AlgorithmKind::kCycleRank)).ok());
    EXPECT_TRUE(registry_.Register(std::make_shared<CountingAlgorithm>()).ok());
    EXPECT_TRUE(registry_.Register(std::make_shared<SlowAlgorithm>()).ok());

    GraphBuilder builder;
    builder.AddEdge("a", "b");
    builder.AddEdge("b", "a");
    builder.AddEdge("b", "c");
    builder.AddEdge("c", "a");
    EXPECT_TRUE(store_.PutDataset("tiny", builder.BuildShared().value()).ok());

    PlatformOptions options = PlatformOptions::WithWorkers(4, 123);
    options.listen_port = 0;  // ephemeral — tests never fight over a port
    options.io_threads = 2;
    gateway_ = std::make_unique<ApiGateway>(&store_, &registry_, options);
    server_ = std::make_unique<NetServer>(gateway_.get(), options);
    EXPECT_TRUE(server_->Start().ok());
  }

  NetClient Connect() {
    NetClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  QuerySet OneTask(const std::string& algorithm, const std::string& params) {
    TaskBuilder builder;
    EXPECT_TRUE(builder.Add("tiny", algorithm, params).ok());
    return builder.Build();
  }

  AlgorithmRegistry registry_;
  Datastore store_;
  std::unique_ptr<ApiGateway> gateway_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetE2eTest, FullGatewaySurfaceOverTcp) {
  NetClient client = Connect();

  // Upload a dataset over the wire, then run against it.
  ASSERT_TRUE(client.UploadDataset("uploaded", "a,b\nb,a\n").ok());
  const std::string id =
      client.SubmitQuerySet([&] {
              TaskBuilder builder;
              EXPECT_TRUE(builder.Add("uploaded", "pagerank", "").ok());
              return builder.Build();
            }())
          .value();
  ASSERT_TRUE(client.WaitForCompletion(id, 30.0).value());

  const ComparisonStatus status = client.GetStatus(id).value();
  EXPECT_TRUE(status.done);
  EXPECT_EQ(status.completed, 1u);
  EXPECT_EQ(status.comparison_id, id);

  const auto results = client.GetResults(id).value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[0].ranking.empty());

  EXPECT_TRUE(client.Cancel(id).ok());  // no-op on a done comparison
  EXPECT_EQ(client.GetStatus("no-such-comparison").status().code(),
            StatusCode::kNotFound);

  const std::string stats = client.Stats().value();
  EXPECT_NE(stats.find("frames_received="), std::string::npos);
  EXPECT_NE(stats.find("connections_accepted="), std::string::npos);
}

TEST_F(NetE2eTest, WireResultsAreBitIdenticalToInProcess) {
  NetClient client = Connect();
  const std::string id =
      client.SubmitQuerySet(OneTask("cyclerank", "source=a, k=3")).value();
  ASSERT_TRUE(client.WaitForCompletion(id, 30.0).value());

  // Same comparison, read through both paths.
  const auto wire = client.GetResults(id).value();
  const auto local = gateway_->GetResults(id).value();
  ASSERT_EQ(wire.size(), local.size());
  for (size_t i = 0; i < wire.size(); ++i) {
    // The result_io codec is lossless, so byte equality here means the
    // network transported every field — doubles included — exactly.
    EXPECT_EQ(SerializeTaskResult(wire[i]), SerializeTaskResult(local[i]));
  }
}

TEST_F(NetE2eTest, EightConcurrentConnectionsCoalesceSingleFlight) {
  CountingAlgorithm::runs_ = 0;
  constexpr int kClients = 8;
  std::vector<std::string> serialized(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &serialized] {
      NetClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
      // All eight submit the *same* spec — one kernel run must serve all.
      auto id = client.SubmitQuerySet(OneTask("counting", "alpha=0.5"));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(client.WaitForCompletion(*id, 30.0).value());
      auto results = client.GetResults(*id);
      ASSERT_TRUE(results.ok());
      ASSERT_EQ(results->size(), 1u);
      EXPECT_TRUE((*results)[0].status.ok());
      // Strip the per-submission metadata: each submission gets its own
      // task id, and `seconds` is per-delivery wall time (the leader
      // records the kernel run, followers record the fan-out copy). The
      // spec, status, and every ranking double must agree bit-exactly.
      TaskResult result = (*results)[0];
      result.task_id.clear();
      result.seconds = 0.0;
      serialized[i] = SerializeTaskResult(result);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Cross-connection single-flight: cached or coalesced, the kernel ran
  // exactly once for eight identical submissions over eight sockets.
  EXPECT_EQ(CountingAlgorithm::runs_.load(), 1);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(serialized[i], serialized[0]) << "client " << i;
  }
}

TEST_F(NetE2eTest, SubscribeDeliversTerminalPushWithoutPolling) {
  NetClient submitter = Connect();
  NetClient watcher = Connect();
  const std::string id =
      submitter.SubmitQuerySet(OneTask("slow", "")).value();
  // Both connections subscribe — one also parks an indefinite wait.
  ASSERT_TRUE(watcher.Subscribe(id).ok());
  ASSERT_TRUE(submitter.Subscribe(id).ok());

  const EventMessage event = watcher.NextEvent(30.0).value();
  EXPECT_EQ(event.comparison.comparison_id, id);
  EXPECT_TRUE(event.comparison.done);
  EXPECT_EQ(event.comparison.completed, 1u);

  const EventMessage second = submitter.NextEvent(30.0).value();
  EXPECT_EQ(second.comparison.comparison_id, id);
  EXPECT_TRUE(second.comparison.done);
}

TEST_F(NetE2eTest, SubscribeToFinishedComparisonPushesImmediately) {
  NetClient client = Connect();
  const std::string id =
      client.SubmitQuerySet(OneTask("pagerank", "")).value();
  ASSERT_TRUE(client.WaitForCompletion(id, 30.0).value());
  ASSERT_TRUE(client.Subscribe(id).ok());
  const EventMessage event = client.NextEvent(10.0).value();
  EXPECT_EQ(event.comparison.comparison_id, id);
  EXPECT_TRUE(event.comparison.done);
}

TEST_F(NetE2eTest, WaitTimesOutOverTheWire) {
  NetClient client = Connect();
  const std::string id = client.SubmitQuerySet(OneTask("slow", "")).value();
  // 50ms against a 300ms task: the server answers done=false at the
  // deadline (status OK — a timeout is an answer, not an error).
  EXPECT_FALSE(client.WaitForCompletion(id, 0.05).value());
  // And an indefinite wait afterwards completes normally.
  EXPECT_TRUE(client.WaitForCompletion(id, 0.0).value());
}

TEST_F(NetE2eTest, GarbageBytesGetAnErrorFrameNotACrash) {
  // Raw socket, deliberately not speaking CYRQ1.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const char garbage[] = "this is definitely not a CYRQ frame";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);

  // The server answers one ERROR frame, then closes.
  std::string received;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  FrameDecoder decoder(0);
  decoder.Feed(received);
  Frame frame;
  Status error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Outcome::kFrame);
  EXPECT_EQ(frame.type, kError);
  const auto message = DecodeErrorMessage(frame.payload).value();
  EXPECT_EQ(message.status.code(), StatusCode::kParseError);

  // The server survived: a well-behaved client still gets service.
  NetClient client = Connect();
  EXPECT_TRUE(client.Stats().ok());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetE2eTest, TruncatedAndOversizedFramesNeverKillTheServer) {
  // A frame cut off mid-payload, then the connection dropped: the server
  // just discards the partial state.
  {
    NetClient client = Connect();
    // (Raw write through a second throwaway socket.)
  }
  const std::string valid = EncodeUploadDatasetRequest({1, "x", "a,b\n"});
  for (const size_t cut : {size_t{3}, size_t{10}, valid.size() - 1}) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_GT(::send(fd, valid.data(), cut, MSG_NOSIGNAL), 0);
    ::close(fd);
  }
  // Oversized declared length (beyond the server's max_frame_bytes).
  {
    std::string huge_header;
    huge_header.append(kFrameMagic, sizeof(kFrameMagic));
    huge_header.push_back(static_cast<char>(kProtocolVersion));
    huge_header.push_back(0x01);
    uint64_t huge = uint64_t{1} << 50;
    while (huge >= 0x80) {
      huge_header.push_back(static_cast<char>((huge & 0x7f) | 0x80));
      huge >>= 7;
    }
    huge_header.push_back(static_cast<char>(huge));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_GT(
        ::send(fd, huge_header.data(), huge_header.size(), MSG_NOSIGNAL), 0);
    std::string received;
    char buf[256];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    FrameDecoder decoder(0);
    decoder.Feed(received);
    Frame frame;
    Status error;
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Outcome::kFrame);
    EXPECT_EQ(DecodeErrorMessage(frame.payload).value().status.code(),
              StatusCode::kInvalidArgument);
  }
  // After all of that, normal service continues.
  NetClient client = Connect();
  const std::string id =
      client.SubmitQuerySet(OneTask("pagerank", "")).value();
  EXPECT_TRUE(client.WaitForCompletion(id, 30.0).value());
}

TEST_F(NetE2eTest, UnknownFrameTypeAnsweredWithoutDisconnect) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // A well-framed message of a type this server never heard of, followed
  // by a valid stats request on the same connection.
  std::string bytes = EncodeFrame(0x5e, std::string("\0\0\0\0\0\0\0\0", 8));
  bytes += EncodeStatsRequest({42});
  ASSERT_GT(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL), 0);
  FrameDecoder decoder(0);
  std::vector<Frame> frames;
  char buf[4096];
  while (frames.size() < 2) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed early";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    Frame frame;
    Status error;
    while (decoder.Next(&frame, &error) == FrameDecoder::Outcome::kFrame) {
      frames.push_back(frame);
    }
  }
  ::close(fd);
  EXPECT_EQ(frames[0].type, kError);
  EXPECT_EQ(DecodeErrorMessage(frames[0].payload).value().status.code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(frames[1].type, kStatsResp);  // the connection stayed open
}

TEST_F(NetE2eTest, MaxConnectionsRejectsTheOverflowConnection) {
  PlatformOptions options = PlatformOptions::WithWorkers(2, 7);
  options.listen_port = 0;
  options.max_connections = 1;
  NetServer small(gateway_.get(), options);
  ASSERT_TRUE(small.Start().ok());

  NetClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", small.port()).ok());
  ASSERT_TRUE(first.Stats().ok());  // occupies the single slot

  NetClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", small.port()).ok());
  const auto stats = second.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(small.stats().connections_rejected, 1u);

  // The admitted connection is unaffected.
  EXPECT_TRUE(first.Stats().ok());
}

TEST_F(NetE2eTest, GracefulShutdownAnswersParkedWaits) {
  NetClient client = Connect();
  const std::string id = client.SubmitQuerySet(OneTask("slow", "")).value();
  std::thread stopper([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server_->Shutdown();
  });
  // Parked indefinitely, then the drain answers it with kUnavailable.
  const auto wait = client.WaitForCompletion(id, 0.0);
  stopper.join();
  // Either the task finished just before the drain (done) or the drain
  // answered kUnavailable — both are orderly; a hang or a crash is not.
  if (wait.ok()) {
    EXPECT_TRUE(*wait);
  } else {
    EXPECT_EQ(wait.status().code(), StatusCode::kUnavailable);
  }
}

}  // namespace
}  // namespace net
}  // namespace cyclerank
