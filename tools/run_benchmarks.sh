#!/usr/bin/env bash
# Runs the perf benchmark suite (perf_pagerank, perf_cyclerank,
# perf_ppr_variants, plus the perf_result_cache cache-hit sweep) with
# --benchmark_format=json and merges the results into one file, so the
# repo's perf trajectory is tracked PR over PR.
#
# Usage:
#   tools/run_benchmarks.sh [OUT_JSON]
#
# Environment:
#   BUILD_DIR     build directory holding the bench binaries (default: build)
#   BENCH_FILTER  optional --benchmark_filter regex forwarded to every suite
#   BENCH_MIN_TIME optional --benchmark_min_time seconds (default: 0.5)
#
# Example (the PR-2 evidence file; PR 1 wrote BENCH_PR1.json the same way):
#   cmake -B build -S . && cmake --build build -j
#   tools/run_benchmarks.sh BENCH_PR2.json
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_PR2.json}
SUITES=(perf_pagerank perf_cyclerank perf_ppr_variants perf_result_cache)
TMP_DIR=$(mktemp -d)
trap 'rm -rf "${TMP_DIR}"' EXIT

for suite in "${SUITES[@]}"; do
  bin="${BUILD_DIR}/${suite}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
  echo "== ${suite}" >&2
  args=(--benchmark_format=json "--benchmark_out=${TMP_DIR}/${suite}.json"
        --benchmark_out_format=json
        "--benchmark_min_time=${BENCH_MIN_TIME:-0.5}")
  if [[ -n "${BENCH_FILTER:-}" ]]; then
    args+=("--benchmark_filter=${BENCH_FILTER}")
  fi
  "${bin}" "${args[@]}" >/dev/null
done

python3 - "${OUT}" "${TMP_DIR}" "${SUITES[@]}" <<'EOF'
import json, subprocess, sys

out_path, tmp_dir, *suites = sys.argv[1:]
merged = {"suites": {}}
for suite in suites:
    with open(f"{tmp_dir}/{suite}.json") as f:
        data = json.load(f)
    merged.setdefault("context", data.get("context", {}))
    merged["suites"][suite] = data.get("benchmarks", [])
try:
    merged["git_revision"] = subprocess.check_output(
        ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
except Exception:
    pass
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}")
EOF
