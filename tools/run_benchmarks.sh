#!/usr/bin/env bash
# Runs the perf benchmark suite (perf_pagerank, perf_cyclerank,
# perf_ppr_variants, the perf_result_cache cache-hit sweep, the
# perf_forward_push frontier-engine sweeps, the perf_datastore
# storage-layer + spill-tier sweeps, and the perf_sharding shard-local
# compute sweeps) with --benchmark_format=json and merges the results
# into one file, so the repo's perf trajectory is tracked PR over PR.
#
# Usage:
#   tools/run_benchmarks.sh [--smoke] [OUT_JSON]
#
#   --smoke   CI mode: every suite runs with a minimal measurement time so
#             the binaries are exercised end-to-end (they cannot silently
#             rot), but no JSON is written and no numbers are meant to be
#             read — the CI runner's core count and noise make them
#             meaningless as perf evidence.
#
# Environment:
#   BUILD_DIR     build directory holding the bench binaries (default: build)
#   BENCH_FILTER  optional --benchmark_filter regex forwarded to every suite
#   BENCH_MIN_TIME optional --benchmark_min_time seconds
#                 (default: 0.5, or 0.01 under --smoke)
#   BENCH_REPS    optional --benchmark_repetitions; > 1 reports only the
#                 mean/median/stddev aggregates (recommended on noisy
#                 shared hosts, where single samples swing by >10%)
#   BENCH_SPILL_DIR optional root for the spill-tier benchmarks' scratch
#                 files (default: a fresh mktemp dir, removed on exit)
#
# The merged JSON carries a `single_core_host` flag: on a 1-CPU runner the
# thread sweeps measure parallel-engine *overhead bounds*, not scaling, and
# downstream tooling must not read them as speedup claims.
#
# Example (the PR-9 evidence file; earlier PRs wrote BENCH_PR<n>.json the
# same way):
#   cmake -B build -S . && cmake --build build -j
#   tools/run_benchmarks.sh BENCH_PR9.json
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
OUT=${1:-BENCH_PR9.json}

# The spill-tier benchmarks write real files; point them at a per-run temp
# dir (honored via BENCH_SPILL_DIR in bench/perf_datastore.cc) so smoke runs
# on CI and local runs never collide or leave litter behind.
if [[ -z "${BENCH_SPILL_DIR:-}" ]]; then
  BENCH_SPILL_DIR=$(mktemp -d)
  export BENCH_SPILL_DIR
  SPILL_DIR_CLEANUP=1
fi
SUITES=(perf_pagerank perf_cyclerank perf_ppr_variants perf_result_cache
        perf_forward_push perf_datastore perf_sharding)
TMP_DIR=$(mktemp -d)
trap 'rm -rf "${TMP_DIR}"; [[ -n "${SPILL_DIR_CLEANUP:-}" ]] && rm -rf "${BENCH_SPILL_DIR}"' EXIT

for suite in "${SUITES[@]}"; do
  bin="${BUILD_DIR}/${suite}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
  echo "== ${suite}" >&2
  if [[ "${SMOKE}" == 1 ]]; then
    # Console output only: the run is the artifact, not the numbers.
    args=("--benchmark_min_time=${BENCH_MIN_TIME:-0.01}")
    if [[ -n "${BENCH_FILTER:-}" ]]; then
      args+=("--benchmark_filter=${BENCH_FILTER}")
    fi
    "${bin}" "${args[@]}"
    continue
  fi
  args=(--benchmark_format=json "--benchmark_out=${TMP_DIR}/${suite}.json"
        --benchmark_out_format=json
        "--benchmark_min_time=${BENCH_MIN_TIME:-0.5}")
  if [[ -n "${BENCH_FILTER:-}" ]]; then
    args+=("--benchmark_filter=${BENCH_FILTER}")
  fi
  if [[ "${BENCH_REPS:-1}" -gt 1 ]]; then
    args+=("--benchmark_repetitions=${BENCH_REPS}"
           --benchmark_report_aggregates_only=true)
  fi
  "${bin}" "${args[@]}" >/dev/null
done

if [[ "${SMOKE}" == 1 ]]; then
  echo "bench smoke: OK (all suites ran; no JSON written)" >&2
  exit 0
fi

python3 - "${OUT}" "${TMP_DIR}" "${SUITES[@]}" <<'EOF'
import json, os, subprocess, sys

out_path, tmp_dir, *suites = sys.argv[1:]
merged = {"suites": {}}
for suite in suites:
    with open(f"{tmp_dir}/{suite}.json") as f:
        data = json.load(f)
    merged.setdefault("context", data.get("context", {}))
    merged["suites"][suite] = data.get("benchmarks", [])
cpus = os.cpu_count() or merged.get("context", {}).get("num_cpus", 0)
merged["host_cpus"] = cpus
merged["single_core_host"] = cpus <= 1
# The perf_sharding sweep's configuration, stamped so downstream tooling
# can interpret the shards= counter rows without parsing benchmark names.
merged["shard_sweep"] = {
    "kernel_shard_counts": [0, 2, 4, 8],  # 0 = monolithic baseline
    "build_shard_counts": [2, 4, 8, 16],
    "partitioners": ["contiguous_range", "degree_balanced"],
    "bit_identical_across_shards": True,  # enforced by sharding_grid_test
}
if merged["single_core_host"]:
    merged["thread_sweep_caveat"] = (
        "host exposes 1 CPU: Threads(2..8) rows bound the parallel engine's "
        "overhead, they are NOT scaling measurements")
try:
    merged["git_revision"] = subprocess.check_output(
        ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
except Exception:
    pass
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}")
EOF
