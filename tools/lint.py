#!/usr/bin/env python3
"""Determinism / concurrency-idiom lint for the cyclerank sources.

Six rules, all rooted in the platform's guarantees:

  determinism-rng       `rand()` / `srand()` / `std::random_device` outside
                        the seeded `common/rng.cc`. Kernels must be
                        bit-identical across runs; ambient entropy anywhere
                        in `src/` undermines that. (`common/uuid.cc` may use
                        `std::random_device`: task ids are identifiers, not
                        results, and are explicitly seedable.)

  raw-thread            `std::thread` outside `common/thread_pool.*` and
                        `platform/spill_tier.*`. All compute parallelism
                        must flow through the shared pool so worker counts,
                        shutdown, and the lock hierarchy stay in one place.
                        (`std::thread::hardware_concurrency()` is a pure
                        query and allowed anywhere.)

  raw-mutex             raw standard-library synchronization types
                        (`std::mutex`, `std::shared_mutex`,
                        `std::condition_variable`, `std::lock_guard`,
                        `std::unique_lock`, `std::scoped_lock`) outside
                        `common/mutex.h`. Only the annotated wrappers give
                        Clang's thread-safety analysis and the lock-rank
                        checker visibility.

  unordered-iteration   range-for over a `std::unordered_{map,set}` in
                        result-producing code (`src/core`, `src/eval`,
                        `src/graph`, `src/datasets`) — iteration order is
                        implementation-defined, so anything derived from it
                        is not portable-deterministic. Membership tests and
                        lookups are fine. In `src/core` (the kernels) the
                        containers are banned outright.

  platform-direct-io    direct filesystem access (`<filesystem>`,
                        `<fstream>`, `std::filesystem`, stream types,
                        `fopen`) in `src/platform/`. All
                        storage-stack I/O must flow through the `Env` seam
                        (`common/env.h`) so disk failure stays an injectable,
                        testable input — a direct `std::ofstream` would be a
                        write the fault harness can never reach. The sole
                        sanctioned implementation site is `common/env.cc`,
                        which lives outside `src/platform/` by construction.

  net-socket            raw socket / `poll` usage (the BSD socket and poll
                        headers, or globally-qualified calls like
                        `::socket(` / `::poll(`) outside `src/net/`. All
                        wire I/O must flow through the net layer
                        (`NetServer` / `NetClient`) so framing, frame-size
                        limits, connection accounting, and drain-on-shutdown
                        live in exactly one place — a stray socket elsewhere
                        would be a connection the daemon can neither count
                        nor drain. (Tests and `tools/` are outside the
                        linted root and may open sockets freely.)

Usage:
  tools/lint.py                 # lint src/ of the repo containing this file
  tools/lint.py path/to/src     # lint an explicit tree
  tools/lint.py --self-test     # run the embedded known-bad fixtures

Exits non-zero when findings (or self-test failures) exist.
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Paths are matched as POSIX strings relative to the linted root.
RNG_ALLOWED = {"common/rng.cc", "common/rng.h"}
RNG_DEVICE_ALLOWED = RNG_ALLOWED | {"common/uuid.cc"}
THREAD_ALLOWED = {
    "common/thread_pool.h",
    "common/thread_pool.cc",
    "platform/spill_tier.h",
    "platform/spill_tier.cc",
}
MUTEX_ALLOWED = {"common/mutex.h"}
# Directories whose output feeds rankings/results/stored artifacts.
DETERMINISTIC_DIRS = ("core/", "eval/", "graph/", "datasets/")

RE_RAND = re.compile(r"(?<![\w:])s?rand\s*\(")
RE_RANDOM_DEVICE = re.compile(r"std::random_device")
RE_THREAD = re.compile(r"std::thread\b(?!::)")
RE_RAW_SYNC = re.compile(
    r"std::(?:mutex|shared_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock)\b"
)
RE_UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s*&?\s*"
    r"(\w+)\s*[;,={)(]"
)
RE_UNORDERED_ANY = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
RE_RANGE_FOR = re.compile(r"for\s*\([^;:()]*?:\s*&?\s*(\w+)\s*\)")
RE_DIRECT_IO = re.compile(
    r"#\s*include\s*<(?:filesystem|fstream)>"
    r"|std::(?:filesystem\b|[io]?fstream\b)"
    r"|(?<![\w:])fopen\s*\("
)
RE_NET_SOCKET = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/poll\.h|poll\.h|netdb\.h|"
    r"netinet/in\.h|netinet/tcp\.h|arpa/inet\.h)>"
    r"|(?<![\w:])::(?:socket|bind|listen|accept4?|connect|poll|ppoll|"
    r"send|recv|getaddrinfo|getsockname|setsockopt)\s*\("
)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so the token regexes don't fire on prose or messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif text[i] in "\"'":
            quote = text[i]
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_file(rel_path, text):
    """Yields (line_number, rule, message) findings for one file."""
    rel = rel_path.replace("\\", "/")
    clean = strip_comments_and_strings(text)
    lines = clean.split("\n")

    in_deterministic_dir = rel.startswith(DETERMINISTIC_DIRS)
    # Two-pass: names declared (or taken as parameters) with an unordered
    # type anywhere in the file, then range-for loops over those names.
    unordered_names = set(RE_UNORDERED_DECL.findall(clean))

    for lineno, line in enumerate(lines, start=1):
        if RE_RAND.search(line) and rel not in RNG_ALLOWED:
            yield (lineno, "determinism-rng",
                   "rand()/srand() outside common/rng.cc — use the seeded "
                   "Rng so results stay reproducible")
        if RE_RANDOM_DEVICE.search(line) and rel not in RNG_DEVICE_ALLOWED:
            yield (lineno, "determinism-rng",
                   "std::random_device outside common/rng.cc (uuid.cc is "
                   "the one sanctioned identifier-entropy user)")
        if RE_THREAD.search(line) and rel not in THREAD_ALLOWED:
            yield (lineno, "raw-thread",
                   "raw std::thread outside the thread pool / spill tier — "
                   "route parallelism through ThreadPool")
        if RE_RAW_SYNC.search(line) and rel not in MUTEX_ALLOWED:
            yield (lineno, "raw-mutex",
                   "raw standard-library synchronization outside "
                   "common/mutex.h — use the annotated Mutex/MutexLock/"
                   "CondVar wrappers")
        if rel.startswith("platform/") and RE_DIRECT_IO.search(line):
            yield (lineno, "platform-direct-io",
                   "direct filesystem access in src/platform/ — all storage "
                   "I/O must go through the Env seam (common/env.h) so "
                   "faults stay injectable; implementations belong in "
                   "common/env.cc")
        if RE_NET_SOCKET.search(line) and not rel.startswith("net/"):
            yield (lineno, "net-socket",
                   "raw socket/poll usage outside src/net/ — all wire I/O "
                   "goes through NetServer/NetClient so framing, limits, "
                   "and drain-on-shutdown stay in one place")
        if rel.startswith("core/") and RE_UNORDERED_ANY.search(line):
            yield (lineno, "unordered-iteration",
                   "unordered containers are banned in kernels (src/core) — "
                   "their order leaks into results; use std::map/std::set "
                   "or sorted vectors")
        elif in_deterministic_dir:
            match = RE_RANGE_FOR.search(line)
            if match and match.group(1) in unordered_names:
                yield (lineno, "unordered-iteration",
                       f"iterating unordered container '{match.group(1)}' "
                       "in result-producing code — order is implementation-"
                       "defined; iterate a sorted view instead")


def lint_tree(root):
    findings = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in {".cc", ".h", ".cpp", ".hpp"}:
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        for lineno, rule, message in lint_file(rel, text):
            findings.append(f"{root / rel}:{lineno}: [{rule}] {message}")
    return findings


# ---- self-test -----------------------------------------------------------

# (virtual path, snippet, expected rule or None)
FIXTURES = [
    ("core/kernel.cc", "int x = rand();", "determinism-rng"),
    ("platform/foo.cc", "std::random_device rd;", "determinism-rng"),
    ("common/uuid.cc", "std::random_device rd;", None),
    ("common/rng.cc", "srand(42);", None),
    ("platform/foo.cc", "std::thread worker([]{});", "raw-thread"),
    ("platform/foo.cc",
     "unsigned n = std::thread::hardware_concurrency();", None),
    ("common/thread_pool.cc", "std::thread worker([]{});", None),
    ("platform/foo.cc", "std::mutex mu_;", "raw-mutex"),
    ("platform/foo.cc", "std::lock_guard<std::mutex> lock(mu_);",
     "raw-mutex"),
    ("common/mutex.h", "std::mutex mu_;", None),
    ("platform/foo.cc", "// std::mutex in a comment is fine", None),
    ("platform/foo.cc", 'Log("uses std::thread internally");', None),
    ("core/kernel.cc", "#include <unordered_map>", "unordered-iteration"),
    ("eval/metrics.cc",
     "std::unordered_set<NodeId> seen;\nfor (NodeId v : seen) Use(v);",
     "unordered-iteration"),
    ("eval/metrics.cc",
     "void F(const std::unordered_set<NodeId>& relevant) {\n"
     "  for (NodeId v : relevant) Use(v);\n}",
     "unordered-iteration"),
    ("eval/metrics.cc",
     "std::unordered_set<NodeId> seen;\nbool hit = seen.count(v);", None),
    ("datasets/gen.cc",
     "std::vector<NodeId> targets;\nfor (NodeId v : targets) Use(v);",
     None),
    ("platform/store.cc",
     "std::unordered_map<K, V> m;\nfor (auto& kv : m) Use(kv);", None),
    ("platform/spill_tier.cc", "#include <filesystem>",
     "platform-direct-io"),
    ("platform/spill_tier.cc", "#include <fstream>", "platform-direct-io"),
    ("platform/datastore.cc", "std::filesystem::remove(path);",
     "platform-direct-io"),
    ("platform/datastore.cc", "std::ofstream out(path);",
     "platform-direct-io"),
    ("platform/result_io.cc", "FILE* f = fopen(path, \"rb\");",
     "platform-direct-io"),
    ("platform/result_io.cc", "#include <cstdio>", None),  # snprintf is fine
    ("platform/result_io.cc", "std::snprintf(buf, sizeof(buf), fmt);", None),
    ("common/env.cc", "#include <filesystem>", None),  # the sanctioned seam
    ("core/kernel.cc", "#include <fstream>", None),  # rule scoped to platform
    ("platform/foo.cc", "// mentions std::filesystem in prose", None),
    ("platform/gateway.cc", "#include <sys/socket.h>", "net-socket"),
    ("core/kernel.cc", "#include <poll.h>", "net-socket"),
    ("platform/foo.cc", "int fd = ::socket(AF_INET, SOCK_STREAM, 0);",
     "net-socket"),
    ("common/env.cc", "int rc = ::poll(&pfd, 1, timeout_ms);", "net-socket"),
    ("net/server.cc", "#include <sys/socket.h>", None),  # the net layer
    ("net/client.cc", "int rc = ::poll(&pfd, 1, timeout_ms);", None),
    ("platform/foo.cc", "// ::poll( in prose is fine", None),
    ("platform/foo.cc", "socket_like_name(x);", None),  # unqualified word
]


def self_test():
    failures = []
    for rel, snippet, expected in FIXTURES:
        rules = {rule for _, rule, _ in lint_file(rel, snippet)}
        if expected is None and rules:
            failures.append(f"{rel}: expected clean, got {sorted(rules)}: "
                            f"{snippet!r}")
        elif expected is not None and expected not in rules:
            failures.append(f"{rel}: expected [{expected}], got "
                            f"{sorted(rules) or 'clean'}: {snippet!r}")
    if failures:
        print("lint.py self-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"lint.py self-test passed ({len(FIXTURES)} fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="source roots to lint (default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded known-bad fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    roots = args.paths or [REPO_ROOT / "src"]
    findings = []
    for root in roots:
        if not root.is_dir():
            print(f"lint.py: not a directory: {root}", file=sys.stderr)
            return 2
        findings.extend(lint_tree(root.resolve()))

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
