// cyclerankd — the CycleRank platform daemon: an ApiGateway behind the
// CYRQ1 TCP server (src/net/), serving remote clients the same surface the
// in-process gateway offers. The paper's Web UI would sit in front of
// this; `cyclerank-cli --connect HOST:PORT ...` is the terminal client.
//
//   cyclerankd                                 listen on the default port 7433
//   cyclerankd "<platform options>"            full key=value configuration,
//                                              e.g. "listen_port=9000,
//                                              num_workers=8, io_threads=4,
//                                              max_frame_bytes=128mb"
//
// The options string is PlatformOptions::FromString text and configures
// the whole stack — gateway, scheduler, stores, spill tier, and the
// network front — in one place (see src/platform/README.md for the
// exhaustive table). `listen_port=0` binds an ephemeral port (printed on
// stdout), which is how the e2e tests run the daemon.
//
// SIGTERM/SIGINT begin a graceful drain: stop accepting, answer parked
// waits with kUnavailable, finish in-flight requests, flush, exit.

#include <csignal>
#include <cstdio>
#include <chrono>
#include <string>
#include <thread>

#include "net/server.h"
#include "platform/gateway.h"
#include "platform/platform_options.h"

namespace cyclerank {
namespace {

/// Default CYRQ1 port when launched without an options string.
constexpr uint16_t kDefaultPort = 7433;

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

int Usage() {
  std::fputs(
      "usage: cyclerankd [\"key=value, key=value, ...\"]\n"
      "\n"
      "Runs the CycleRank platform daemon (CYRQ1 protocol, default port "
      "7433).\n"
      "The optional argument is a PlatformOptions string; relevant keys:\n"
      "  listen_port=7433        TCP port (0 = ephemeral, printed on "
      "stdout)\n"
      "  max_connections=64      concurrent connections (0 = unbounded)\n"
      "  max_frame_bytes=64mb    largest accepted frame (0 = unbounded)\n"
      "  io_threads=2            request-handler threads\n"
      "  num_workers=4           task-executor threads\n"
      "plus every other platform knob (see src/platform/README.md).\n",
      stderr);
  return 2;
}

int Main(int argc, char** argv) {
  PlatformOptions options;
  options.listen_port = kDefaultPort;
  if (argc > 1) {
    const std::string text = argv[1];
    if (text == "--help" || text == "-h" || argc > 2) return Usage();
    auto parsed = PlatformOptions::FromString(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    options = *parsed;
  }

  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // Writes already use MSG_NOSIGNAL; this covers any straggler path.
  std::signal(SIGPIPE, SIG_IGN);

  Datastore store(&DatasetCatalog::BuiltIn(), options);
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);
  net::NetServer server(&gateway, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("cyclerankd: listening on port %u (%zu workers, %zu io "
              "threads)\n",
              server.port(), gateway.num_workers(), options.io_threads);
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("cyclerankd: draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  const net::NetServerStats stats = server.stats();
  gateway.Shutdown();
  (void)store.Flush();
  std::printf("cyclerankd: served %llu frames on %llu connections, bye\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main(int argc, char** argv) { return cyclerank::Main(argc, argv); }
