#!/usr/bin/env bash
# One-command verification: the tier-1 suite (Release build + ctest) plus
# the concurrency suites under a sanitizer — the gate every PR must pass.
# CI (.github/workflows/ci.yml) and local runs share this entrypoint, so
# "green locally" and "green in CI" mean the same thing.
#
# Usage:
#   tools/verify.sh                       # tier-1 + TSan (the default gate)
#   tools/verify.sh --tier1-only          # just the Release build + ctest
#   tools/verify.sh --tsan-only           # just the TSan suite
#   tools/verify.sh --sanitize=thread     # any -DCYCLERANK_SANITIZE value,
#   tools/verify.sh --sanitize=address,undefined   # e.g. ASan+UBSan
#   tools/verify.sh --static              # static gate: Clang build with
#                                         # -Werror=thread-safety, clang-tidy
#                                         # over src/, tools/lint.py
#   tools/verify.sh --faults              # fault matrix: ASan+UBSan build,
#                                         # fault-injection suites swept over
#                                         # CYCLERANK_FAULT_SEED values
#
# Environment:
#   BUILD_DIR          tier-1 build directory          (default: build)
#   TSAN_DIR           thread-sanitizer build dir      (default: build-tsan)
#   STATIC_DIR         --static build dir              (default: build-static)
#   CLANG / CLANG_TIDY compilers for --static    (default: clang++,
#                      clang-tidy; run-clang-tidy is used when available)
#   JOBS               parallel build/test jobs        (default: nproc)
#   FAULT_SEEDS        seeds swept by --faults   (default: "1 7 42 1337 9001")
#   VERIFY_CMAKE_ARGS  extra args for every configure, e.g.
#                      "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache" (CI cache)
#
# Sanitizer trees build only the library and tests (benchmarks, examples
# and tools are skipped — they add compile time but no coverage).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
TSAN_DIR=${TSAN_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}
MODE=${1:-all}
# Deliberately word-split: VERIFY_CMAKE_ARGS holds whole cmake arguments.
read -r -a EXTRA_CMAKE_ARGS <<<"${VERIFY_CMAKE_ARGS:-}"

run_tier1() {
  echo "== tier-1: configure + build + ctest (${BUILD_DIR})" >&2
  cmake -B "${BUILD_DIR}" -S . "${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"}"
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
}

run_sanitize() {
  local san="$1"
  local dir
  if [[ "${san}" == "thread" ]]; then
    dir="${TSAN_DIR}"          # keep the historical tree name for TSan
  else
    dir="build-san-${san//,/-}"  # e.g. build-san-address-undefined
  fi
  echo "== sanitize=${san}: configure + build + ctest (${dir})" >&2
  if [[ "${san}" == *undefined* ]]; then
    # A UBSan diagnostic must fail the suite, not scroll past it.
    export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
  fi
  if [[ "${san}" == *thread* ]]; then
    # TSan's lock-order detector accretes stale graph edges: libstdc++'s
    # std::mutex never calls pthread_mutex_destroy, so a dead stack
    # mutex's edges survive and stack-address reuse across sequential
    # tests stitches phantom "cycles" between unrelated mutexes. Lock
    # order is instead enforced by the runtime lock-rank checker
    # (common/lock_rank.h), which is active in this very build and
    # aborts on the first wrong nesting; TSan still gates data races.
    export TSAN_OPTIONS="detect_deadlocks=0${TSAN_OPTIONS:+:${TSAN_OPTIONS}}"
  fi
  cmake -B "${dir}" -S . -DCYCLERANK_SANITIZE="${san}" \
        -DCYCLERANK_BUILD_BENCHMARKS=OFF -DCYCLERANK_BUILD_EXAMPLES=OFF \
        -DCYCLERANK_BUILD_TOOLS=OFF \
        "${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"}"
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_faults() {
  # The PR-8 fault matrix: build the tests under ASan+UBSan (a torn write
  # or recovery bug should abort loudly, not corrupt quietly), run every
  # fault-injection suite once, then sweep the randomized-churn tests over
  # a set of seeds — determinism means any failing seed reproduces exactly.
  local dir="build-san-address-undefined"
  local seeds=${FAULT_SEEDS:-"1 7 42 1337 9001"}
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
  echo "== faults 1/3: ASan+UBSan build (${dir})" >&2
  cmake -B "${dir}" -S . -DCYCLERANK_SANITIZE=address,undefined \
        -DCYCLERANK_BUILD_BENCHMARKS=OFF -DCYCLERANK_BUILD_EXAMPLES=OFF \
        -DCYCLERANK_BUILD_TOOLS=OFF \
        "${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"}"
  cmake --build "${dir}" -j "${JOBS}" --target common_tests platform_tests
  echo "== faults 2/3: fault-injection + env suites" >&2
  "${dir}/common_tests" --gtest_filter='*Env*:*Backoff*'
  "${dir}/platform_tests" --gtest_filter='FaultInjection*:Overload*'
  echo "== faults 3/3: seed sweep (${seeds})" >&2
  for seed in ${seeds}; do
    echo "---- CYCLERANK_FAULT_SEED=${seed}" >&2
    CYCLERANK_FAULT_SEED="${seed}" "${dir}/platform_tests" \
      --gtest_filter='FaultInjectionTest.RandomFaultChurnNeverServesWrongBytes'
  done
}

run_static() {
  local dir=${STATIC_DIR:-build-static}
  local clang=${CLANG:-clang++}
  local tidy=${CLANG_TIDY:-clang-tidy}
  if ! command -v "${clang}" >/dev/null; then
    echo "verify --static: ${clang} not found (set CLANG=)" >&2
    exit 2
  fi
  echo "== static 1/3: Clang build, -Werror=thread-safety (${dir})" >&2
  # Debug so the lock-rank checker compiles in — the static tree doubles as
  # proof that the checked configuration builds warning-clean.
  cmake -B "${dir}" -S . -DCMAKE_CXX_COMPILER="${clang}" \
        -DCMAKE_BUILD_TYPE=Debug -DCYCLERANK_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCYCLERANK_BUILD_BENCHMARKS=OFF -DCYCLERANK_BUILD_EXAMPLES=OFF \
        "${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "== static 2/3: clang-tidy over src/" >&2
  # run-clang-tidy parallelizes; fall back to sequential clang-tidy. Either
  # way the log is kept for the CI failure artifact.
  local tidy_log="${dir}/clang-tidy.log"
  if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -p "${dir}" -quiet -j "${JOBS}" 'src/.*' \
      2>&1 | tee "${tidy_log}"
  elif command -v "${tidy}" >/dev/null; then
    find src \( -name '*.cc' \) -print0 |
      xargs -0 -n 8 -P "${JOBS}" "${tidy}" -p "${dir}" --quiet \
        2>&1 | tee "${tidy_log}"
  else
    echo "verify --static: ${tidy} not found (set CLANG_TIDY=)" >&2
    exit 2
  fi
  # clang-tidy exits 0 even on gated findings in some harness paths; grep
  # the log so a '-warnings-as-errors' hit always fails the gate.
  if grep -q "warnings treated as errors\|error:" "${tidy_log}"; then
    echo "verify --static: clang-tidy reported gated findings" >&2
    exit 1
  fi
  echo "== static 3/3: tools/lint.py" >&2
  python3 tools/lint.py --self-test
  python3 tools/lint.py
}

case "${MODE}" in
  all)          run_tier1; run_sanitize thread ;;
  --tier1-only) run_tier1 ;;
  --tsan-only)  run_sanitize thread ;;
  --sanitize=*) run_sanitize "${MODE#--sanitize=}" ;;
  --static)     run_static ;;
  --faults)     run_faults ;;
  *)
    echo "usage: tools/verify.sh [--tier1-only | --tsan-only | --sanitize=<list> | --static | --faults]" >&2
    exit 2 ;;
esac
echo "verify: OK (${MODE})" >&2
