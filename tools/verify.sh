#!/usr/bin/env bash
# One-command verification: the tier-1 suite (Release build + ctest) plus
# the concurrency suites under ThreadSanitizer — the gate every PR must
# pass (`cmake --preset`-style convenience without requiring CMake 3.19).
#
# Usage:
#   tools/verify.sh [--tier1-only | --tsan-only]
#
# Environment:
#   BUILD_DIR  tier-1 build directory            (default: build)
#   TSAN_DIR   ThreadSanitizer build directory   (default: build-tsan)
#   JOBS       parallel build/test jobs          (default: nproc)
#
# The TSan tree builds only the library and tests (benchmarks, examples
# and tools are skipped — they add compile time but no coverage).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
TSAN_DIR=${TSAN_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}
MODE=${1:-all}

run_tier1() {
  echo "== tier-1: configure + build + ctest (${BUILD_DIR})" >&2
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "== TSan: configure + build + ctest (${TSAN_DIR})" >&2
  cmake -B "${TSAN_DIR}" -S . -DCYCLERANK_SANITIZE=thread \
        -DCYCLERANK_BUILD_BENCHMARKS=OFF -DCYCLERANK_BUILD_EXAMPLES=OFF \
        -DCYCLERANK_BUILD_TOOLS=OFF
  cmake --build "${TSAN_DIR}" -j "${JOBS}"
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}"
}

case "${MODE}" in
  all)          run_tier1; run_tsan ;;
  --tier1-only) run_tier1 ;;
  --tsan-only)  run_tsan ;;
  *) echo "usage: tools/verify.sh [--tier1-only | --tsan-only]" >&2; exit 2 ;;
esac
echo "verify: OK (${MODE})" >&2
