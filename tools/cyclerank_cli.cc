// cyclerank-cli — terminal counterpart of the demo's Web UI. Every
// capability the paper's interface exposes is reachable here:
//
//   cyclerank-cli datasets                        list the pre-loaded catalog
//   cyclerank-cli algorithms                      list registered algorithms
//   cyclerank-cli stats <dataset>                 dataset statistics
//   cyclerank-cli run <dataset> <algorithm> [params] [top_k]
//                                                 one task through the platform
//   cyclerank-cli compare <dataset> <reference> [k]
//                                                 all seven algorithms side by side
//   cyclerank-cli convert <input-file> <output-file>
//                                                 edgelist/pajek/asd/metis conversion
//   cyclerank-cli export <dataset> <algorithm> <params> <out.json|out.csv>
//                                                 run a task, save the result
//   cyclerank-cli explain <dataset> <reference> <target> [k]
//                                                 show the cycles behind a score
//
// With `--connect HOST:PORT` the same platform operations run against a
// remote `cyclerankd` daemon over the CYRQ1 protocol (docs/PROTOCOL.md)
// instead of an in-process gateway:
//
//   cyclerank-cli --connect H:P run <dataset> <algorithm> [params] [top_k]
//   cyclerank-cli --connect H:P submit <dataset> <algorithm> [params]
//   cyclerank-cli --connect H:P status|results|wait|cancel <comparison-id>
//   cyclerank-cli --connect H:P watch <comparison-id>    subscribe, block
//                                                        for the push
//   cyclerank-cli --connect H:P upload <name> <file>
//   cyclerank-cli --connect H:P stats                    server counters
//
// Examples:
//   cyclerank-cli run enwiki-mini-2018 cyclerank "source=Pasta, k=3" 5
//   cyclerank-cli compare amazon-books-mini "1984" 5
//   cyclerank-cli convert graph.csv graph.net
//   cyclerank-cli --connect localhost:7433 run enwiki-mini-2018
//       cyclerank "source=Pasta, k=3" 5

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/explain.h"
#include "datasets/catalog.h"
#include "eval/comparison.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "net/client.h"
#include "platform/gateway.h"
#include "platform/result_io.h"

namespace cyclerank {
namespace {

int Usage() {
  std::fputs(
      "usage: cyclerank-cli <command> [args]\n"
      "  datasets\n"
      "  algorithms\n"
      "  stats <dataset>\n"
      "  run <dataset> <algorithm> [params] [top_k]\n"
      "  compare <dataset> <reference> [k]\n"
      "  convert <input-file> <output-file>\n"
      "  export <dataset> <algorithm> <params> <out.json|out.csv>\n"
      "  explain <dataset> <reference> <target> [k]\n",
      stderr);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdDatasets() {
  std::printf("%-22s %-10s %s\n", "name", "source", "description");
  for (const DatasetInfo& info : DatasetCatalog::BuiltIn().List()) {
    std::printf("%-22s %-10s %s\n", info.name.c_str(), info.source.c_str(),
                info.description.c_str());
  }
  std::printf("\n%zu pre-loaded datasets\n", DatasetCatalog::BuiltIn().size());
  return 0;
}

int CmdAlgorithms() {
  auto& registry = AlgorithmRegistry::Default();
  std::printf("%-16s %-12s %s\n", "name", "needs ref?", "output");
  for (const std::string& name : registry.Names()) {
    const auto algorithm = registry.Find(name);
    if (!algorithm.ok()) continue;
    std::printf("%-16s %-12s %s\n", name.c_str(),
                (*algorithm)->requires_reference() ? "yes" : "no",
                (*algorithm)->produces_scores() ? "scores" : "ranking only");
  }
  return 0;
}

int CmdStats(const std::string& dataset) {
  auto graph = DatasetCatalog::BuiltIn().Load(dataset);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s:\n%s\n", dataset.c_str(),
              ComputeGraphStats(**graph).ToString().c_str());
  return 0;
}

int CmdRun(const std::string& dataset, const std::string& algorithm,
           const std::string& params, const std::string& top_k) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  std::string full_params = params;
  if (!top_k.empty()) {
    full_params += full_params.empty() ? "" : ", ";
    full_params += "top_k=" + top_k;
  }
  const Status add_status = builder.Add(dataset, algorithm, full_params);
  if (!add_status.ok()) return Fail(add_status);
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  std::printf("comparison id: %s\n", id->c_str());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto results = gateway.GetResults(*id);
  if (!results.ok()) return Fail(results.status());
  const TaskResult& result = results->front();
  if (!result.status.ok()) return Fail(result.status);
  auto graph = store.GetDataset(dataset);
  std::printf("%zu ranked nodes in %.1f ms:\n", result.ranking.size(),
              result.seconds * 1000.0);
  const size_t limit = result.ranking.size() > 25 && top_k.empty()
                           ? 25
                           : result.ranking.size();
  std::fputs(FormatTopK(result.ranking, **graph, limit).c_str(), stdout);
  if (limit < result.ranking.size()) {
    std::printf("... (%zu more)\n", result.ranking.size() - limit);
  }
  return 0;
}

int CmdCompare(const std::string& dataset, const std::string& reference,
               const std::string& k) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4));
  TaskBuilder builder;
  const std::string params =
      "source=" + reference + ", k=" + (k.empty() ? "3" : k);
  for (const char* algorithm :
       {"pagerank", "cheirank", "2drank", "pers_pagerank", "pers_cheirank",
        "pers_2drank", "cyclerank"}) {
    const Status add_status = builder.Add(dataset, algorithm, params);
    if (!add_status.ok()) return Fail(add_status);
  }
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  std::printf("comparison id: %s\n\n", id->c_str());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto results = gateway.GetResults(*id);
  auto graph = store.GetDataset(dataset);
  if (!results.ok() || !graph.ok()) return Fail(results.status());

  std::vector<ComparisonColumn> columns;
  for (const TaskResult& result : *results) {
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.spec.algorithm.c_str(),
                   result.status.ToString().c_str());
      continue;
    }
    columns.push_back({result.spec.algorithm, result.ranking});
  }
  ComparisonTableOptions table;
  table.top_k = 5;
  table.skip_node = (*graph)->FindNode(reference);
  std::fputs(RenderComparisonTable(**graph, columns, table).c_str(), stdout);
  std::puts("\npairwise agreement at depth 5:");
  std::fputs(RenderPairwise(ComparePairwise(columns, 5)).c_str(), stdout);
  return 0;
}

int CmdConvert(const std::string& input, const std::string& output) {
  auto graph = ReadGraphFile(input);
  if (!graph.ok()) return Fail(graph.status());
  auto format = GraphFormatFromPath(output);
  if (!format.ok()) return Fail(format.status());
  const Status st = WriteGraphFile(*graph, output, *format);
  if (!st.ok()) return Fail(st);
  std::printf("%s (%u nodes, %llu edges) -> %s [%s]\n", input.c_str(),
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              output.c_str(),
              std::string(GraphFormatToString(*format)).c_str());
  return 0;
}

int CmdExport(const std::string& dataset, const std::string& algorithm,
              const std::string& params, const std::string& output) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  const Status add_status = builder.Add(dataset, algorithm, params);
  if (!add_status.ok()) return Fail(add_status);
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto status = gateway.GetStatus(*id);
  auto results = gateway.GetResults(*id);
  auto graph = store.GetDataset(dataset);
  if (!status.ok() || !results.ok() || !graph.ok() || results->empty()) {
    return Fail(Status::Internal("task did not produce a result"));
  }
  ResultExportOptions options;
  options.graph = graph->get();
  options.pretty = true;
  std::string payload;
  if (EndsWith(output, ".csv")) {
    payload = RankingToCsv(results->front().ranking, options);
  } else {
    payload = ComparisonToJson(*status, *results, options);
  }
  std::FILE* file = std::fopen(output.c_str(), "w");
  if (file == nullptr) {
    return Fail(Status::IOError("cannot open '" + output + "' for writing"));
  }
  std::fwrite(payload.data(), 1, payload.size(), file);
  std::fclose(file);
  std::printf("wrote %zu bytes to %s (comparison %s)\n", payload.size(),
              output.c_str(), id->c_str());
  return 0;
}

int CmdExplain(const std::string& dataset, const std::string& reference,
               const std::string& target, const std::string& k) {
  auto graph = DatasetCatalog::BuiltIn().Load(dataset);
  if (!graph.ok()) return Fail(graph.status());
  const Graph& g = **graph;
  const NodeId ref = g.FindNode(reference);
  const NodeId tgt = g.FindNode(target);
  if (ref == kInvalidNode || tgt == kInvalidNode) {
    return Fail(Status::NotFound("reference or target node not found"));
  }
  ExplainOptions options;
  if (!k.empty()) {
    auto parsed = ParseInt64(k);
    if (!parsed.ok() || *parsed < 2) {
      return Fail(Status::InvalidArgument("k must be an integer >= 2"));
    }
    options.max_cycle_length = static_cast<uint32_t>(*parsed);
  }
  auto explanation = ExplainCycles(g, ref, tgt, options);
  if (!explanation.ok()) return Fail(explanation.status());
  std::printf("cycles of length <= %u through '%s' and '%s': %llu\n",
              options.max_cycle_length, reference.c_str(), target.c_str(),
              static_cast<unsigned long long>(explanation->total_found));
  std::fputs(FormatExplanation(*explanation, g).c_str(), stdout);
  return 0;
}

// ---- Remote mode (--connect HOST:PORT) ------------------------------------
//
// The same platform surface, served by a cyclerankd daemon over CYRQ1.
// Rankings print node ids rather than labels: the graph lives on the
// server, and the wire results are bit-identical to what the in-process
// gateway returns (tests/net/net_e2e_test.cc holds that line).

int RemoteUsage() {
  std::fputs(
      "usage: cyclerank-cli --connect HOST:PORT <command> [args]\n"
      "  run <dataset> <algorithm> [params] [top_k]\n"
      "  submit <dataset> <algorithm> [params]\n"
      "  status <comparison-id>\n"
      "  results <comparison-id>\n"
      "  wait <comparison-id> [timeout-seconds]\n"
      "  cancel <comparison-id>\n"
      "  watch <comparison-id>\n"
      "  upload <name> <file>\n"
      "  stats\n",
      stderr);
  return 2;
}

void PrintComparison(const ComparisonStatus& status) {
  for (size_t i = 0;
       i < status.task_ids.size() && i < status.states.size(); ++i) {
    const std::string_view state = TaskStateToString(status.states[i]);
    std::printf("%-44s %.*s\n", status.task_ids[i].c_str(),
                static_cast<int>(state.size()), state.data());
  }
  std::printf("%zu completed, %zu failed, %zu cancelled -- %s\n",
              status.completed, status.failed, status.cancelled,
              status.done ? "done" : "in progress");
}

void PrintRemoteResults(const std::vector<TaskResult>& results) {
  for (const TaskResult& result : results) {
    std::printf("%s  [%s]\n", result.task_id.c_str(),
                result.spec.ToString().c_str());
    if (!result.status.ok()) {
      std::printf("  failed: %s\n", result.status.ToString().c_str());
      continue;
    }
    std::printf("  %zu ranked nodes in %.1f ms\n", result.ranking.size(),
                result.seconds * 1000.0);
    const size_t limit =
        result.ranking.size() > 25 ? 25 : result.ranking.size();
    for (size_t i = 0; i < limit; ++i) {
      std::printf("  %3zu. node %u  %.6f\n", i + 1,
                  result.ranking[i].node, result.ranking[i].score);
    }
    if (limit < result.ranking.size()) {
      std::printf("  ... (%zu more)\n", result.ranking.size() - limit);
    }
  }
}

int CmdRemoteRun(net::NetClient& client, const std::string& dataset,
                 const std::string& algorithm, const std::string& params,
                 const std::string& top_k, bool wait_for_results) {
  TaskBuilder builder;
  std::string full_params = params;
  if (!top_k.empty()) {
    full_params += full_params.empty() ? "" : ", ";
    full_params += "top_k=" + top_k;
  }
  const Status add_status = builder.Add(dataset, algorithm, full_params);
  if (!add_status.ok()) return Fail(add_status);
  auto id = client.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  std::printf("comparison id: %s\n", id->c_str());
  if (!wait_for_results) return 0;
  auto done = client.WaitForCompletion(*id, 600.0);
  if (!done.ok()) return Fail(done.status());
  auto results = client.GetResults(*id);
  if (!results.ok()) return Fail(results.status());
  PrintRemoteResults(*results);
  return 0;
}

int CmdRemoteWatch(net::NetClient& client, const std::string& id) {
  const Status subscribed = client.Subscribe(id);
  if (!subscribed.ok()) return Fail(subscribed);
  std::printf("subscribed to %s; waiting for the terminal-state push...\n",
              id.c_str());
  std::fflush(stdout);
  auto event = client.NextEvent();
  if (!event.ok()) return Fail(event.status());
  PrintComparison(event->comparison);
  return 0;
}

int CmdRemoteUpload(net::NetClient& client, const std::string& name,
                    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Fail(Status::IOError("cannot read '" + path + "'"));
  }
  std::ostringstream content;
  content << file.rdbuf();
  const Status status = client.UploadDataset(name, content.str());
  if (!status.ok()) return Fail(status);
  std::printf("uploaded %s (%zu bytes)\n", name.c_str(),
              content.str().size());
  return 0;
}

int RemoteMain(int argc, char** argv) {
  // argv: cli --connect HOST:PORT <command> [args]
  if (argc < 4) return RemoteUsage();
  const std::string endpoint = argv[2];
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0) return RemoteUsage();
  auto port = ParseInt64(endpoint.substr(colon + 1));
  if (!port.ok() || *port < 1 || *port > 65535) {
    return Fail(Status::InvalidArgument("bad port in '" + endpoint + "'"));
  }
  net::NetClient client;
  const Status connected = client.Connect(
      endpoint.substr(0, colon), static_cast<uint16_t>(*port));
  if (!connected.ok()) return Fail(connected);

  const std::string command = argv[3];
  auto arg = [&](int i) -> std::string { return argc > i ? argv[i] : ""; };
  if (command == "run" || command == "submit") {
    if (argc < 6) return RemoteUsage();
    return CmdRemoteRun(client, arg(4), arg(5), arg(6), arg(7),
                        /*wait_for_results=*/command == "run");
  }
  if (command == "status") {
    if (argc < 5) return RemoteUsage();
    auto status = client.GetStatus(arg(4));
    if (!status.ok()) return Fail(status.status());
    PrintComparison(*status);
    return 0;
  }
  if (command == "results") {
    if (argc < 5) return RemoteUsage();
    auto results = client.GetResults(arg(4));
    if (!results.ok()) return Fail(results.status());
    PrintRemoteResults(*results);
    return 0;
  }
  if (command == "wait") {
    if (argc < 5) return RemoteUsage();
    double timeout_seconds = 0.0;
    if (argc > 5) {
      auto parsed = ParseInt64(arg(5));
      if (!parsed.ok() || *parsed < 0) {
        return Fail(Status::InvalidArgument("bad timeout '" + arg(5) + "'"));
      }
      timeout_seconds = static_cast<double>(*parsed);
    }
    auto done = client.WaitForCompletion(arg(4), timeout_seconds);
    if (!done.ok()) return Fail(done.status());
    std::printf("%s\n", *done ? "done" : "timed out");
    return *done ? 0 : 1;
  }
  if (command == "cancel") {
    if (argc < 5) return RemoteUsage();
    const Status status = client.Cancel(arg(4));
    if (!status.ok()) return Fail(status);
    std::printf("cancellation requested\n");
    return 0;
  }
  if (command == "watch") {
    if (argc < 5) return RemoteUsage();
    return CmdRemoteWatch(client, arg(4));
  }
  if (command == "upload") {
    if (argc < 6) return RemoteUsage();
    return CmdRemoteUpload(client, arg(4), arg(5));
  }
  if (command == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::fputs(stats->c_str(), stdout);
    return 0;
  }
  return RemoteUsage();
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--connect") return RemoteMain(argc, argv);
  auto arg = [&](int i) -> std::string {
    return argc > i ? argv[i] : "";
  };
  if (command == "datasets") return CmdDatasets();
  if (command == "algorithms") return CmdAlgorithms();
  if (command == "stats") {
    if (argc < 3) return Usage();
    return CmdStats(arg(2));
  }
  if (command == "run") {
    if (argc < 4) return Usage();
    return CmdRun(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "compare") {
    if (argc < 4) return Usage();
    return CmdCompare(arg(2), arg(3), arg(4));
  }
  if (command == "convert") {
    if (argc < 4) return Usage();
    return CmdConvert(arg(2), arg(3));
  }
  if (command == "export") {
    if (argc < 6) return Usage();
    return CmdExport(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "explain") {
    if (argc < 5) return Usage();
    return CmdExplain(arg(2), arg(3), arg(4), arg(5));
  }
  return Usage();
}

}  // namespace
}  // namespace cyclerank

int main(int argc, char** argv) { return cyclerank::Main(argc, argv); }
