// cyclerank-cli — terminal counterpart of the demo's Web UI. Every
// capability the paper's interface exposes is reachable here:
//
//   cyclerank-cli datasets                        list the pre-loaded catalog
//   cyclerank-cli algorithms                      list registered algorithms
//   cyclerank-cli stats <dataset>                 dataset statistics
//   cyclerank-cli run <dataset> <algorithm> [params] [top_k]
//                                                 one task through the platform
//   cyclerank-cli compare <dataset> <reference> [k]
//                                                 all seven algorithms side by side
//   cyclerank-cli convert <input-file> <output-file>
//                                                 edgelist/pajek/asd/metis conversion
//   cyclerank-cli export <dataset> <algorithm> <params> <out.json|out.csv>
//                                                 run a task, save the result
//   cyclerank-cli explain <dataset> <reference> <target> [k]
//                                                 show the cycles behind a score
//
// Examples:
//   cyclerank-cli run enwiki-mini-2018 cyclerank "source=Pasta, k=3" 5
//   cyclerank-cli compare amazon-books-mini "1984" 5
//   cyclerank-cli convert graph.csv graph.net

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/explain.h"
#include "datasets/catalog.h"
#include "eval/comparison.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "platform/gateway.h"
#include "platform/result_io.h"

namespace cyclerank {
namespace {

int Usage() {
  std::fputs(
      "usage: cyclerank-cli <command> [args]\n"
      "  datasets\n"
      "  algorithms\n"
      "  stats <dataset>\n"
      "  run <dataset> <algorithm> [params] [top_k]\n"
      "  compare <dataset> <reference> [k]\n"
      "  convert <input-file> <output-file>\n"
      "  export <dataset> <algorithm> <params> <out.json|out.csv>\n"
      "  explain <dataset> <reference> <target> [k]\n",
      stderr);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdDatasets() {
  std::printf("%-22s %-10s %s\n", "name", "source", "description");
  for (const DatasetInfo& info : DatasetCatalog::BuiltIn().List()) {
    std::printf("%-22s %-10s %s\n", info.name.c_str(), info.source.c_str(),
                info.description.c_str());
  }
  std::printf("\n%zu pre-loaded datasets\n", DatasetCatalog::BuiltIn().size());
  return 0;
}

int CmdAlgorithms() {
  auto& registry = AlgorithmRegistry::Default();
  std::printf("%-16s %-12s %s\n", "name", "needs ref?", "output");
  for (const std::string& name : registry.Names()) {
    const auto algorithm = registry.Find(name);
    if (!algorithm.ok()) continue;
    std::printf("%-16s %-12s %s\n", name.c_str(),
                (*algorithm)->requires_reference() ? "yes" : "no",
                (*algorithm)->produces_scores() ? "scores" : "ranking only");
  }
  return 0;
}

int CmdStats(const std::string& dataset) {
  auto graph = DatasetCatalog::BuiltIn().Load(dataset);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s:\n%s\n", dataset.c_str(),
              ComputeGraphStats(**graph).ToString().c_str());
  return 0;
}

int CmdRun(const std::string& dataset, const std::string& algorithm,
           const std::string& params, const std::string& top_k) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  std::string full_params = params;
  if (!top_k.empty()) {
    full_params += full_params.empty() ? "" : ", ";
    full_params += "top_k=" + top_k;
  }
  const Status add_status = builder.Add(dataset, algorithm, full_params);
  if (!add_status.ok()) return Fail(add_status);
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  std::printf("comparison id: %s\n", id->c_str());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto results = gateway.GetResults(*id);
  if (!results.ok()) return Fail(results.status());
  const TaskResult& result = results->front();
  if (!result.status.ok()) return Fail(result.status);
  auto graph = store.GetDataset(dataset);
  std::printf("%zu ranked nodes in %.1f ms:\n", result.ranking.size(),
              result.seconds * 1000.0);
  const size_t limit = result.ranking.size() > 25 && top_k.empty()
                           ? 25
                           : result.ranking.size();
  std::fputs(FormatTopK(result.ranking, **graph, limit).c_str(), stdout);
  if (limit < result.ranking.size()) {
    std::printf("... (%zu more)\n", result.ranking.size() - limit);
  }
  return 0;
}

int CmdCompare(const std::string& dataset, const std::string& reference,
               const std::string& k) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4));
  TaskBuilder builder;
  const std::string params =
      "source=" + reference + ", k=" + (k.empty() ? "3" : k);
  for (const char* algorithm :
       {"pagerank", "cheirank", "2drank", "pers_pagerank", "pers_cheirank",
        "pers_2drank", "cyclerank"}) {
    const Status add_status = builder.Add(dataset, algorithm, params);
    if (!add_status.ok()) return Fail(add_status);
  }
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  std::printf("comparison id: %s\n\n", id->c_str());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto results = gateway.GetResults(*id);
  auto graph = store.GetDataset(dataset);
  if (!results.ok() || !graph.ok()) return Fail(results.status());

  std::vector<ComparisonColumn> columns;
  for (const TaskResult& result : *results) {
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.spec.algorithm.c_str(),
                   result.status.ToString().c_str());
      continue;
    }
    columns.push_back({result.spec.algorithm, result.ranking});
  }
  ComparisonTableOptions table;
  table.top_k = 5;
  table.skip_node = (*graph)->FindNode(reference);
  std::fputs(RenderComparisonTable(**graph, columns, table).c_str(), stdout);
  std::puts("\npairwise agreement at depth 5:");
  std::fputs(RenderPairwise(ComparePairwise(columns, 5)).c_str(), stdout);
  return 0;
}

int CmdConvert(const std::string& input, const std::string& output) {
  auto graph = ReadGraphFile(input);
  if (!graph.ok()) return Fail(graph.status());
  auto format = GraphFormatFromPath(output);
  if (!format.ok()) return Fail(format.status());
  const Status st = WriteGraphFile(*graph, output, *format);
  if (!st.ok()) return Fail(st);
  std::printf("%s (%u nodes, %llu edges) -> %s [%s]\n", input.c_str(),
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              output.c_str(),
              std::string(GraphFormatToString(*format)).c_str());
  return 0;
}

int CmdExport(const std::string& dataset, const std::string& algorithm,
              const std::string& params, const std::string& output) {
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  const Status add_status = builder.Add(dataset, algorithm, params);
  if (!add_status.ok()) return Fail(add_status);
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return Fail(id.status());
  (void)gateway.WaitForCompletion(*id, 600.0);
  auto status = gateway.GetStatus(*id);
  auto results = gateway.GetResults(*id);
  auto graph = store.GetDataset(dataset);
  if (!status.ok() || !results.ok() || !graph.ok() || results->empty()) {
    return Fail(Status::Internal("task did not produce a result"));
  }
  ResultExportOptions options;
  options.graph = graph->get();
  options.pretty = true;
  std::string payload;
  if (EndsWith(output, ".csv")) {
    payload = RankingToCsv(results->front().ranking, options);
  } else {
    payload = ComparisonToJson(*status, *results, options);
  }
  std::FILE* file = std::fopen(output.c_str(), "w");
  if (file == nullptr) {
    return Fail(Status::IOError("cannot open '" + output + "' for writing"));
  }
  std::fwrite(payload.data(), 1, payload.size(), file);
  std::fclose(file);
  std::printf("wrote %zu bytes to %s (comparison %s)\n", payload.size(),
              output.c_str(), id->c_str());
  return 0;
}

int CmdExplain(const std::string& dataset, const std::string& reference,
               const std::string& target, const std::string& k) {
  auto graph = DatasetCatalog::BuiltIn().Load(dataset);
  if (!graph.ok()) return Fail(graph.status());
  const Graph& g = **graph;
  const NodeId ref = g.FindNode(reference);
  const NodeId tgt = g.FindNode(target);
  if (ref == kInvalidNode || tgt == kInvalidNode) {
    return Fail(Status::NotFound("reference or target node not found"));
  }
  ExplainOptions options;
  if (!k.empty()) {
    auto parsed = ParseInt64(k);
    if (!parsed.ok() || *parsed < 2) {
      return Fail(Status::InvalidArgument("k must be an integer >= 2"));
    }
    options.max_cycle_length = static_cast<uint32_t>(*parsed);
  }
  auto explanation = ExplainCycles(g, ref, tgt, options);
  if (!explanation.ok()) return Fail(explanation.status());
  std::printf("cycles of length <= %u through '%s' and '%s': %llu\n",
              options.max_cycle_length, reference.c_str(), target.c_str(),
              static_cast<unsigned long long>(explanation->total_found));
  std::fputs(FormatExplanation(*explanation, g).c_str(), stdout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto arg = [&](int i) -> std::string {
    return argc > i ? argv[i] : "";
  };
  if (command == "datasets") return CmdDatasets();
  if (command == "algorithms") return CmdAlgorithms();
  if (command == "stats") {
    if (argc < 3) return Usage();
    return CmdStats(arg(2));
  }
  if (command == "run") {
    if (argc < 4) return Usage();
    return CmdRun(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "compare") {
    if (argc < 4) return Usage();
    return CmdCompare(arg(2), arg(3), arg(4));
  }
  if (command == "convert") {
    if (argc < 4) return Usage();
    return CmdConvert(arg(2), arg(3));
  }
  if (command == "export") {
    if (argc < 6) return Usage();
    return CmdExport(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "explain") {
    if (argc < 5) return Usage();
    return CmdExplain(arg(2), arg(3), arg(4), arg(5));
  }
  return Usage();
}

}  // namespace
}  // namespace cyclerank

int main(int argc, char** argv) { return cyclerank::Main(argc, argv); }
