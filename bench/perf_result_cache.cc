// Result-cache and single-flight serving latency through the full gateway
// stack: a cold submission pays the kernel, a warm resubmission must be
// served from the cache in well under a millisecond (the PR-2 acceptance
// bar), and the raw cache operations bound the fixed cost of the layer.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "datasets/generators.h"
#include "platform/gateway.h"
#include "platform/params.h"
#include "platform/result_cache.h"

namespace cyclerank {
namespace {

GraphPtr BenchGraph(int64_t n) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = 42;
  return std::make_shared<Graph>(GenerateBarabasiAlbert(config).value());
}

/// Gateway wired like production: datastore-owned cache, shared pool.
struct GatewayFixture {
  explicit GatewayFixture(int64_t nodes)
      : store(nullptr),
        gateway(&store, &AlgorithmRegistry::Default(),
                PlatformOptions::WithWorkers(2, 1)) {
    (void)store.PutDataset("bench", BenchGraph(nodes));
  }
  Datastore store;
  ApiGateway gateway;
};

std::string BenchParams(int64_t top_k, const std::string& extra = "") {
  std::string params = "alpha=0.85" + extra;
  if (top_k > 0) params += ", top_k=" + std::to_string(top_k);
  return params;
}

/// Cold path: every iteration carries a fresh `seed=` value, so every
/// fingerprint is new and the kernel runs each time. This is the baseline
/// the cache-hit latency is compared against. Args: (nodes, top_k; 0 keeps
/// the full ranking).
void BM_GatewaySubmit_ColdKernel(benchmark::State& state) {
  GatewayFixture fx(state.range(0));
  int64_t unique = 0;
  for (auto _ : state) {
    TaskBuilder builder;
    (void)builder.Add(
        "bench", "pagerank",
        BenchParams(state.range(1), ", seed=" + std::to_string(unique++)));
    const std::string id = fx.gateway.SubmitQuerySet(builder.Build()).value();
    benchmark::DoNotOptimize(*fx.gateway.WaitForCompletion(id, 600.0));
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["top_k"] = static_cast<double>(state.range(1));
  state.counters["cache_hits"] =
      static_cast<double>(fx.gateway.result_cache().stats().hits);
}
BENCHMARK(BM_GatewaySubmit_ColdKernel)
    ->Args({10000, 100})->Args({10000, 0})->Args({50000, 100})
    ->Args({50000, 0})->Unit(benchmark::kMillisecond);

/// Warm path: one cold submission populates the cache, then every timed
/// iteration re-submits the identical query set — zero kernel work, the
/// full submit → wait round trip is a cache serve. With demo-style top-k
/// serving the round trip is tens of microseconds; the top_k=0 variants
/// bound the cost of copying a full dense ranking out of the cache. Args:
/// (nodes, top_k).
void BM_GatewaySubmit_CacheHit(benchmark::State& state) {
  GatewayFixture fx(state.range(0));
  TaskBuilder builder;
  (void)builder.Add("bench", "pagerank", BenchParams(state.range(1)));
  {
    const std::string id = fx.gateway.SubmitQuerySet(builder.Build()).value();
    (void)*fx.gateway.WaitForCompletion(id, 600.0);
  }
  for (auto _ : state) {
    const std::string id = fx.gateway.SubmitQuerySet(builder.Build()).value();
    benchmark::DoNotOptimize(*fx.gateway.WaitForCompletion(id, 600.0));
  }
  const ResultCacheStats stats = fx.gateway.result_cache().stats();
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["top_k"] = static_cast<double>(state.range(1));
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_GatewaySubmit_CacheHit)
    ->Args({10000, 100})->Args({10000, 0})->Args({50000, 100})
    ->Args({50000, 0})->Unit(benchmark::kMicrosecond);

/// Raw cache Get on a ranking-sized entry: the floor of the serve path.
void BM_ResultCache_Get(benchmark::State& state) {
  ResultCache cache;
  TaskResult result;
  result.task_id = "t";
  result.spec.dataset = "bench";
  result.spec.algorithm = "pagerank";
  for (int64_t i = 0; i < state.range(0); ++i) {
    result.ranking.push_back({static_cast<NodeId>(i), 1.0 / (1.0 + i)});
  }
  const std::string key =
      TaskFingerprint("bench", "pagerank",
                      ParamMap::Parse("alpha=0.85").value());
  cache.Put(key, std::move(result));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(key));
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ResultCache_Get)->Arg(1000)->Arg(50000);

/// TaskFingerprint itself sits on the submit path of every task.
void BM_TaskFingerprint(benchmark::State& state) {
  const ParamMap params =
      ParamMap::Parse("alpha=0.85, k=3, sigma=exp, source=42, threads=8")
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TaskFingerprint("enwiki-mini-2018", "cyclerank", params));
  }
}
BENCHMARK(BM_TaskFingerprint);

}  // namespace
}  // namespace cyclerank
