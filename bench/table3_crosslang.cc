// Experiment T3 — reproduces Table III of the paper:
//   "Top-5 articles with the highest Cyclerank (K=3, σ=e^-n) scores
//    computed on different Wikipedia language editions (de, es→en, fr, it,
//    nl, pl) using the reference article 'Fake news'."
// Substrate: the six embedded FakeNewsEdition() corpora. The nl and pl
// columns legitimately have fewer than five rows (rendered "-"), exactly as
// in the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/cyclerank.h"
#include "core/ranking.h"
#include "datasets/corpus.h"
#include "eval/comparison.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

int RunTable3() {
  std::puts(
      "Table III: top-5 by Cyclerank (K=3, sigma=e^-n), reference 'Fake "
      "news',\nacross six Wikipedia language editions\n");

  WallTimer timer;

  // Each edition is its own graph; merge the six top lists into one table
  // by building a display graph whose labels are the union of all edition
  // labels (ids never collide because we remap per column).
  GraphBuilder display_builder;
  std::vector<ComparisonColumn> columns;
  std::vector<NodeId> skip_nodes;

  for (const std::string& lang : FakeNewsLanguages()) {
    const auto graph = FakeNewsEdition(lang);
    const auto title = FakeNewsTitle(lang);
    if (!graph.ok() || !title.ok()) {
      std::fprintf(stderr, "%s: %s\n", lang.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    const Graph& g = graph.value();
    const NodeId ref = g.FindNode(*title);
    CycleRankOptions options;
    options.max_cycle_length = 3;
    const auto cr = ComputeCycleRank(g, ref, options);
    if (!cr.ok()) {
      std::fprintf(stderr, "%s: %s\n", lang.c_str(),
                   cr.status().ToString().c_str());
      return 1;
    }
    // Remap this edition's ranked nodes into the shared display id space.
    RankedList remapped;
    NodeId display_ref = kInvalidNode;
    for (const ScoredNode& entry :
         ScoresToRankedList(cr->scores)) {
      const NodeId display_id = display_builder.AddNode(
          g.NodeName(entry.node) + " (" + lang + ")");
      if (entry.node == ref) display_ref = display_id;
      remapped.push_back({display_id, entry.score});
    }
    skip_nodes.push_back(display_ref);
    columns.push_back({*title + " (" + lang + ")", std::move(remapped)});
  }

  const auto display = display_builder.Build();
  if (!display.ok()) return 1;

  // Render each column with its own reference skipped. The renderer takes
  // one skip node; since references differ per column, strip them from the
  // ranked lists instead.
  for (size_t c = 0; c < columns.size(); ++c) {
    RankedList filtered;
    for (const ScoredNode& entry : columns[c].ranking) {
      if (entry.node != skip_nodes[c]) filtered.push_back(entry);
    }
    columns[c].ranking = std::move(filtered);
  }
  ComparisonTableOptions options;
  options.top_k = 5;
  std::fputs(RenderComparisonTable(display.value(), columns, options).c_str(),
             stdout);

  std::printf("\n(total compute time: %ld ms)\n", timer.ElapsedMillis());
  std::puts(
      "\nPaper-shape checks:\n"
      "  - every language surfaces its own framing of the topic\n"
      "  - recurring cross-cultural anchors (Facebook, Donald Trump, "
      "Propaganda) appear in several editions at different ranks\n"
      "  - nl shows 4 results and pl shows 3; the remaining cells are '-'");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunTable3(); }
