// Experiment T1 — reproduces Table I of the paper:
//   "Top-5 articles with the highest PR (α=0.85), CR (K=3, σ=e^-n) and
//    PPR (α=0.3) scores computed on the 2018-03-01 English Wikipedia
//    snapshot. The reference articles for CR and PPR are 'Freddie Mercury'
//    and 'Pasta'."
// Substrate: the embedded EnwikiMini() corpus (DESIGN.md §2). The printed
// rows are compared against the paper in EXPERIMENTS.md.

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/corpus.h"
#include "eval/comparison.h"

namespace cyclerank {
namespace {

int RunTable1() {
  const Result<Graph> graph = EnwikiMini();
  if (!graph.ok()) {
    std::fprintf(stderr, "corpus: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph.value();
  std::printf(
      "Table I: top-5 by PR (a=0.85), CR (K=3, sigma=e^-n), PPR (a=0.3)\n"
      "Dataset: enwiki-mini-2018 (%u nodes, %llu edges; stand-in for the\n"
      "2018-03-01 English Wikipedia snapshot)\n\n",
      g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  WallTimer timer;

  PageRankOptions pr_options;
  pr_options.alpha = 0.85;
  const auto pr = ComputePageRank(g, pr_options);
  if (!pr.ok()) {
    std::fprintf(stderr, "pagerank: %s\n", pr.status().ToString().c_str());
    return 1;
  }

  std::vector<ComparisonColumn> columns;
  columns.push_back({"PageRank (a=.85)", ScoresToRankedList(pr->scores)});

  for (const char* ref_label : {"Freddie Mercury", "Pasta"}) {
    const NodeId ref = g.FindNode(ref_label);
    CycleRankOptions cr_options;
    cr_options.max_cycle_length = 3;
    cr_options.scoring = ScoringFunction::kExponential;
    const auto cr = ComputeCycleRank(g, ref, cr_options);
    PageRankOptions ppr_options;
    ppr_options.alpha = 0.3;
    const auto ppr = ComputePersonalizedPageRank(g, ref, ppr_options);
    if (!cr.ok() || !ppr.ok()) {
      std::fprintf(stderr, "%s: computation failed\n", ref_label);
      return 1;
    }
    columns.push_back({std::string("Cyclerank [") + ref_label + "]",
                       ScoresToRankedList(cr->scores)});
    columns.push_back({std::string("Pers.PageRank [") + ref_label + "]",
                       ScoresToRankedList(ppr->scores)});
  }

  // Table I includes the reference article as row 1 (unlike Tables II-III).
  ComparisonTableOptions table_options;
  table_options.top_k = 5;
  std::fputs(RenderComparisonTable(g, columns, table_options).c_str(), stdout);
  std::printf("\n(total compute time: %ld ms)\n", timer.ElapsedMillis());

  std::puts(
      "\nPaper-shape checks:\n"
      "  - PR top-5 = United States / Animal / Arthropod / Association "
      "football / Insect\n"
      "  - CR columns stay inside the topical clusters\n"
      "  - PPR columns promote one-directional neighbours (FM Tribute "
      "Concert, HIV/AIDS; Bolognese sauce, Carbonara, Durum)");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunTable1(); }
