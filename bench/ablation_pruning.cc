// Ablation A2 — CycleRank search pruning (DESIGN.md §4). The
// distance-bounded DFS must produce byte-identical scores while expanding
// far fewer states than the naive bounded DFS. This bench reports the
// expansion counts, wall-clock times and the speedup across K.

#include <cstdio>

#include "common/timer.h"
#include "core/cyclerank.h"
#include "datasets/generators.h"

namespace cyclerank {
namespace {

int RunAblation() {
  std::puts("Ablation A2: CycleRank distance pruning vs naive bounded DFS\n");

  BarabasiAlbertConfig config;
  config.num_nodes = 20000;
  config.edges_per_node = 6;
  config.reciprocity = 0.3;
  config.seed = 17;
  const auto graph = GenerateBarabasiAlbert(config);
  if (!graph.ok()) return 1;
  const Graph& g = graph.value();
  std::printf("graph: BA n=%u m=%llu reciprocity=%.1f\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              config.reciprocity);

  std::printf("%-4s %-12s %-16s %-16s %-12s %-10s %-8s\n", "K", "cycles",
              "expansions", "expansions", "time (ms)", "time (ms)", "speedup");
  std::printf("%-4s %-12s %-16s %-16s %-12s %-10s %-8s\n", "", "",
              "pruned", "naive", "pruned", "naive", "");

  for (uint32_t k = 2; k <= 5; ++k) {
    CycleRankOptions pruned, naive;
    pruned.max_cycle_length = naive.max_cycle_length = k;
    pruned.use_pruning = true;
    naive.use_pruning = false;

    WallTimer timer;
    const auto a = ComputeCycleRank(g, 0, pruned);
    const double pruned_ms = timer.ElapsedSeconds() * 1000.0;
    timer.Restart();
    const auto b = ComputeCycleRank(g, 0, naive);
    const double naive_ms = timer.ElapsedSeconds() * 1000.0;
    if (!a.ok() || !b.ok()) return 1;

    // Correctness gate: pruning is exact.
    if (a->total_cycles != b->total_cycles) {
      std::fprintf(stderr, "MISMATCH at K=%u: %llu vs %llu cycles\n", k,
                   static_cast<unsigned long long>(a->total_cycles),
                   static_cast<unsigned long long>(b->total_cycles));
      return 1;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (a->scores[u] != b->scores[u]) {
        std::fprintf(stderr, "SCORE MISMATCH at node %u\n", u);
        return 1;
      }
    }

    std::printf("%-4u %-12llu %-16llu %-16llu %-12.1f %-10.1f %.1fx\n", k,
                static_cast<unsigned long long>(a->total_cycles),
                static_cast<unsigned long long>(a->dfs_expansions),
                static_cast<unsigned long long>(b->dfs_expansions), pruned_ms,
                naive_ms, naive_ms / pruned_ms);
  }

  std::puts(
      "\nShape check: identical cycle counts and scores at every K; the\n"
      "pruned search expands a small fraction of the naive state space and\n"
      "the gap widens with K.");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunAblation(); }
