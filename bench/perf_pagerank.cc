// Experiment P3 — PageRank / CheiRank / 2DRank scaling: graph-size sweep
// and damping-factor sweep on Barabási–Albert graphs. Establishes the
// baseline cost of the "established algorithms" the demo compares
// CycleRank against (§II).

#include <benchmark/benchmark.h>

#include "core/cheirank.h"
#include "core/pagerank.h"
#include "core/twodrank.h"
#include "datasets/generators.h"

namespace cyclerank {
namespace {

Graph MakeGraph(int64_t n) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = 42;
  return GenerateBarabasiAlbert(config).value();
}

void BM_PageRank_SizeSweep(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePageRank(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_PageRank_SizeSweep)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PageRank_ThreadSweep(benchmark::State& state) {
  // Pull-phase fan-out on the shared compute pool. Chunking is fixed-grain,
  // so scores are bit-identical across every arg of this sweep (see
  // determinism_test); only the wall clock changes.
  const Graph g = MakeGraph(50000);
  PageRankOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePageRank(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_PageRank_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PageRank_AlphaSweep(benchmark::State& state) {
  const Graph g = MakeGraph(10000);
  PageRankOptions options;
  options.alpha = static_cast<double>(state.range(0)) / 100.0;
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto result = ComputePageRank(g, options);
    iterations = result->iterations;
    benchmark::DoNotOptimize(result);
  }
  // Higher alpha -> slower spectral convergence -> more iterations.
  state.counters["pr_iterations"] = iterations;
}
BENCHMARK(BM_PageRank_AlphaSweep)->Arg(30)->Arg(50)->Arg(85)->Arg(95);

void BM_PersonalizedPageRank(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePersonalizedPageRank(g, 0));
  }
}
BENCHMARK(BM_PersonalizedPageRank)->Arg(1000)->Arg(10000);

void BM_CheiRank(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCheiRank(g));
  }
}
BENCHMARK(BM_CheiRank)->Arg(1000)->Arg(10000);

void BM_TwoDRank(benchmark::State& state) {
  // 2DRank = PageRank + CheiRank + the square merge; roughly 2x PageRank.
  const Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compute2DRank(g));
  }
}
BENCHMARK(BM_TwoDRank)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cyclerank
