// Experiment F2 — micro-benchmarks the task-builder workflow of the
// paper's Figure 2: composing query sets (dataset, algorithm, parameters),
// removing individual queries, clearing the set, parsing parameter strings,
// and minting the UUID permalinks that identify comparisons.

#include <benchmark/benchmark.h>

#include "common/uuid.h"
#include "platform/params.h"
#include "platform/task.h"

namespace cyclerank {
namespace {

void BM_TaskBuilderAdd(benchmark::State& state) {
  for (auto _ : state) {
    TaskBuilder builder;
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          builder.Add("enwiki-mini-2018", "cyclerank",
                      "source=Fake news, k=3, sigma=exp"));
    }
    benchmark::DoNotOptimize(builder.Build());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaskBuilderAdd)->Arg(1)->Arg(8)->Arg(64);

void BM_TaskBuilderRemove(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TaskBuilder builder;
    for (int i = 0; i < 64; ++i) {
      (void)builder.Add("d", "pagerank", "");
    }
    state.ResumeTiming();
    while (!builder.empty()) {
      benchmark::DoNotOptimize(builder.Remove(0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TaskBuilderRemove);

void BM_TaskBuilderClear(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TaskBuilder builder;
    for (int i = 0; i < 64; ++i) {
      (void)builder.Add("d", "pagerank", "");
    }
    state.ResumeTiming();
    builder.Clear();
    benchmark::DoNotOptimize(builder.empty());
  }
}
BENCHMARK(BM_TaskBuilderClear);

void BM_ParamParse(benchmark::State& state) {
  const std::string text =
      "source=Freddie Mercury, k=3, sigma=exp, alpha=0.3, tolerance=1e-10, "
      "max_iterations=200, top_k=5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParamMap::Parse(text));
  }
}
BENCHMARK(BM_ParamParse);

void BM_UuidPermalink(benchmark::State& state) {
  UuidGenerator gen(1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate());
  }
}
BENCHMARK(BM_UuidPermalink);

void BM_TaskSpecToString(benchmark::State& state) {
  TaskSpec spec;
  spec.dataset = "enwiki-mini-2018";
  spec.algorithm = "cyclerank";
  spec.params = ParamMap::Parse("source=Fake news, k=3, sigma=exp").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.ToString());
  }
}
BENCHMARK(BM_TaskSpecToString);

}  // namespace
}  // namespace cyclerank
