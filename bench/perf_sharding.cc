// Experiment P9 — shard-local graph compute (PR 9): the cost of building
// a ShardedGraph view, the locality profile of the contiguous-range and
// degree-balanced partitions (boundary-edge / halo counters), and the
// sharded kernels against their monolithic baselines on a 50k-node
// Barabási–Albert graph. Outputs are bit-identical across the whole
// `shards` sweep by construction (tests/core/sharding_grid_test.cc), so
// the JSON's score-free counters — boundary_edges, halo_nodes, view_bytes
// — are the interesting signal next to the times: they bound the delta
// traffic a multi-process deployment of the same partition would ship.
// shards=0 rows run the monolithic path and are the baseline.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/forward_push.h"
#include "core/pagerank.h"
#include "datasets/generators.h"
#include "graph/sharded_graph.h"
#include "graph/traversal.h"

namespace cyclerank {
namespace {

constexpr int64_t kNodes = 50000;

GraphPtr MakeGraph(int64_t n) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = 99;
  return std::make_shared<const Graph>(
      GenerateBarabasiAlbert(config).value());
}

/// The sweep's view factory: shards == 0 means "monolithic" (no view).
ShardedGraphPtr MaybeView(const GraphPtr& g, int64_t shards) {
  if (shards == 0) return nullptr;
  return std::make_shared<const ShardedGraph>(
      ShardedGraph::Build(g, static_cast<uint32_t>(shards),
                          ContiguousRangePartitioner())
          .value());
}

void RecordViewCounters(benchmark::State& state, const ShardedGraph& view) {
  uint64_t halo = 0;
  for (uint32_t s = 0; s < view.num_shards(); ++s) {
    halo += view.Halo(s).size();
  }
  state.counters["boundary_edges"] =
      static_cast<double>(view.TotalBoundaryEdges());
  state.counters["halo_nodes"] = static_cast<double>(halo);
  state.counters["view_bytes"] = static_cast<double>(view.MemoryBytes());
}

void BM_ShardedGraph_Build(benchmark::State& state) {
  const GraphPtr g = MakeGraph(kNodes);
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const ContiguousRangePartitioner partitioner;
  for (auto _ : state) {
    auto view = ShardedGraph::Build(g, shards, partitioner).value();
    benchmark::DoNotOptimize(view);
  }
  RecordViewCounters(state,
                     ShardedGraph::Build(g, shards, partitioner).value());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedGraph_Build)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ShardedGraph_BuildDegreeBalanced(benchmark::State& state) {
  // Same sweep under the degree-balanced policy: the build pays an extra
  // O(n) weight scan, and on a power-law graph the cuts (and with them
  // the boundary counters) move toward the heavy low-id nodes.
  const GraphPtr g = MakeGraph(kNodes);
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const DegreeBalancedPartitioner partitioner;
  for (auto _ : state) {
    auto view = ShardedGraph::Build(g, shards, partitioner).value();
    benchmark::DoNotOptimize(view);
  }
  RecordViewCounters(state,
                     ShardedGraph::Build(g, shards, partitioner).value());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedGraph_BuildDegreeBalanced)->Arg(2)->Arg(4)->Arg(8);

void BM_PageRank_ShardSweep(benchmark::State& state) {
  const GraphPtr g = MakeGraph(kNodes);
  const ShardedGraphPtr view = MaybeView(g, state.range(1));
  PageRankOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  options.sharded = view.get();
  uint32_t iterations = 0;
  for (auto _ : state) {
    const auto result = ComputePageRank(*g, options).value();
    iterations = result.iterations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["shards"] = static_cast<double>(state.range(1));
  state.counters["iterations"] = static_cast<double>(iterations);
  if (view != nullptr) RecordViewCounters(state, *view);
}
BENCHMARK(BM_PageRank_ShardSweep)
    ->ArgsProduct({{1, 4, 8}, {0, 2, 4, 8}});

void BM_ForwardPush_ShardSweep(benchmark::State& state) {
  const GraphPtr g = MakeGraph(kNodes);
  const ShardedGraphPtr view = MaybeView(g, state.range(1));
  ForwardPushOptions options;
  options.epsilon = 1e-7;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  options.sharded = view.get();
  uint64_t pushes = 0;
  for (auto _ : state) {
    const auto result = ComputeForwardPushPpr(*g, 0, options).value();
    pushes = result.pushes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["shards"] = static_cast<double>(state.range(1));
  state.counters["pushes"] = static_cast<double>(pushes);
}
BENCHMARK(BM_ForwardPush_ShardSweep)
    ->ArgsProduct({{1, 4, 8}, {0, 2, 4, 8}});

void BM_FrontierBfs_ShardSweep(benchmark::State& state) {
  const GraphPtr g = MakeGraph(kNodes);
  const ShardedGraphPtr view = MaybeView(g, state.range(1));
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsDistances(*g, 0, Direction::kForward,
                                          kUnreachable, threads, view.get()));
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["shards"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_FrontierBfs_ShardSweep)
    ->ArgsProduct({{1, 4, 8}, {0, 2, 4, 8}});

}  // namespace
}  // namespace cyclerank
