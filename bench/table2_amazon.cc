// Experiment T2 — reproduces Table II of the paper:
//   "Top-5 articles with the highest PR (α=0.85), CR (K=5, σ=e^-n), and
//    PPR (α=0.85) scores computed on the Amazon co-purchase dataset. The
//    reference items for CR and PPR are '1984' and 'The Fellowship of the
//    Ring'."
// Substrate: the embedded AmazonBooksMini() corpus. Unlike Table I, the
// paper's Table II omits the reference item from the listed rows.

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/corpus.h"
#include "eval/comparison.h"

namespace cyclerank {
namespace {

int RunTable2() {
  const Result<Graph> graph = AmazonBooksMini();
  if (!graph.ok()) {
    std::fprintf(stderr, "corpus: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph.value();
  std::printf(
      "Table II: top-5 by PR (a=0.85), CR (K=5, sigma=e^-n), PPR (a=0.85)\n"
      "Dataset: amazon-books-mini (%u nodes, %llu edges; stand-in for the\n"
      "Amazon co-purchase graph of 548,552 products)\n\n",
      g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  WallTimer timer;

  PageRankOptions pr_options;
  pr_options.alpha = 0.85;
  const auto pr = ComputePageRank(g, pr_options);
  if (!pr.ok()) {
    std::fprintf(stderr, "pagerank: %s\n", pr.status().ToString().c_str());
    return 1;
  }

  // Global PageRank column (no reference to skip).
  {
    std::vector<ComparisonColumn> columns = {
        {"PageRank (a=.85)", ScoresToRankedList(pr->scores)}};
    ComparisonTableOptions options;
    options.top_k = 5;
    std::fputs(RenderComparisonTable(g, columns, options).c_str(), stdout);
    std::puts("");
  }

  for (const char* ref_label : {"1984", "The Fellowship of the Ring"}) {
    const NodeId ref = g.FindNode(ref_label);
    CycleRankOptions cr_options;
    cr_options.max_cycle_length = 5;
    const auto cr = ComputeCycleRank(g, ref, cr_options);
    PageRankOptions ppr_options;
    ppr_options.alpha = 0.85;
    const auto ppr = ComputePersonalizedPageRank(g, ref, ppr_options);
    if (!cr.ok() || !ppr.ok()) {
      std::fprintf(stderr, "%s: computation failed\n", ref_label);
      return 1;
    }
    std::printf("reference item: %s\n", ref_label);
    std::vector<ComparisonColumn> columns = {
        {"Cyclerank (K=5)", ScoresToRankedList(cr->scores)},
        {"Pers.PageRank (a=.85)", ScoresToRankedList(ppr->scores)}};
    ComparisonTableOptions options;
    options.top_k = 5;
    options.skip_node = ref;  // Table II lists only non-reference items
    std::fputs(RenderComparisonTable(g, columns, options).c_str(), stdout);
    std::puts("");
  }

  std::printf("(total compute time: %ld ms)\n", timer.ElapsedMillis());
  std::puts(
      "\nPaper-shape checks:\n"
      "  - PPR[Fellowship] promotes the Harry Potter bestsellers; Cyclerank "
      "excludes them\n"
      "  - CR columns stay within the Orwell / Tolkien co-purchase "
      "clusters");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunTable2(); }
