// Experiment P2 — CycleRank scalability: maximum-cycle-length (K) sweep
// and graph-size sweep. The K sweep exposes the exponential growth of the
// enumeration space that makes the distance pruning (ablation A2) matter;
// the paper runs K=3 on Wikipedia and K=5 on Amazon.

#include <benchmark/benchmark.h>

#include "core/cyclerank.h"
#include "datasets/generators.h"

namespace cyclerank {
namespace {

Graph MakeGraph(int64_t n, double reciprocity = 0.3) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 6;
  config.reciprocity = reciprocity;
  config.seed = 7;
  return GenerateBarabasiAlbert(config).value();
}

void BM_CycleRank_KSweep(benchmark::State& state) {
  const Graph g = MakeGraph(5000);
  CycleRankOptions options;
  options.max_cycle_length = static_cast<uint32_t>(state.range(0));
  uint64_t cycles = 0;
  uint64_t expansions = 0;
  for (auto _ : state) {
    auto result = ComputeCycleRank(g, 0, options);
    cycles = result->total_cycles;
    expansions = result->dfs_expansions;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["expansions"] = static_cast<double>(expansions);
}
BENCHMARK(BM_CycleRank_KSweep)->DenseRange(2, 6);

void BM_CycleRank_SizeSweep(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  CycleRankOptions options;
  options.max_cycle_length = 3;  // the paper's Wikipedia setting
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCycleRank(g, 0, options));
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_CycleRank_SizeSweep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CycleRank_ReciprocitySweep(benchmark::State& state) {
  // Denser reciprocal structure -> more cycles -> more work at equal size.
  const double reciprocity = static_cast<double>(state.range(0)) / 100.0;
  const Graph g = MakeGraph(5000, reciprocity);
  CycleRankOptions options;
  options.max_cycle_length = 4;
  uint64_t cycles = 0;
  for (auto _ : state) {
    auto result = ComputeCycleRank(g, 0, options);
    cycles = result->total_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_CycleRank_ReciprocitySweep)->Arg(10)->Arg(30)->Arg(60);

void BM_CycleRank_ThreadSweep(benchmark::State& state) {
  // Parallel enumeration over first-hop branches. On a multi-core host the
  // speedup approaches the thread count for cycle-dense graphs; results
  // stay bit-identical to the serial run (see cyclerank_test).
  const Graph g = MakeGraph(5000, /*reciprocity=*/0.5);
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCycleRank(g, 0, options));
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_CycleRank_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CycleRank_ScoringFunctions(benchmark::State& state) {
  // sigma only changes the per-cycle arithmetic; runtime should be flat
  // across scoring functions (the A1 ablation's timing side).
  const Graph g = MakeGraph(5000);
  CycleRankOptions options;
  options.max_cycle_length = 4;
  options.scoring = static_cast<ScoringFunction>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCycleRank(g, 0, options));
  }
}
BENCHMARK(BM_CycleRank_ScoringFunctions)->DenseRange(0, 3);

}  // namespace
}  // namespace cyclerank
