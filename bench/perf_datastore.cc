// Storage-layer throughput: dataset upload (with and without eviction
// pressure), pinned snapshot fetches, and the text-upload admission path.
// The PR-4 decomposition split the datastore into individually-locked
// stores; these sweeps bound the fixed cost of the byte-budgeted
// graph-store layer so retention never becomes the bottleneck of the
// upload/query hot paths.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "platform/datastore.h"

namespace cyclerank {
namespace {

GraphPtr BenchGraph(int64_t n, uint64_t seed) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = seed;
  return std::make_shared<Graph>(GenerateBarabasiAlbert(config).value());
}

PlatformOptions GraphBudget(size_t bytes) {
  PlatformOptions options;
  options.graph_store_bytes = bytes;
  return options;
}

/// Steady-state upload cost with eviction: the budget holds ~4 graphs, so
/// every further upload evicts the least-recently-queried one. Arg: nodes.
void BM_Datastore_UploadEvict(benchmark::State& state) {
  // A pool of pre-built graphs keeps graph construction out of the loop.
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(state.range(0), seed));
  }
  Datastore store(nullptr, GraphBudget(4 * pool[0]->MemoryBytes()));
  uint64_t uploads = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(uploads);
    benchmark::DoNotOptimize(
        store.PutDataset(name, pool[uploads % pool.size()]));
    ++uploads;
  }
  const GraphStoreStats stats = store.graph_store().stats();
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["graph_bytes"] = static_cast<double>(pool[0]->MemoryBytes());
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["store_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_Datastore_UploadEvict)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

/// Upload cost without a budget (the historical unbounded path), for the
/// eviction overhead delta. Every name is fresh — the map grows for the
/// run's duration, which is exactly what "unbounded" costs; entries share
/// the pooled graphs, so growth is index-only. Arg: nodes.
void BM_Datastore_UploadUnbounded(benchmark::State& state) {
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(state.range(0), seed));
  }
  Datastore store(nullptr);
  uint64_t uploads = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(uploads);
    benchmark::DoNotOptimize(
        store.PutDataset(name, pool[uploads % pool.size()]));
    ++uploads;
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Datastore_UploadUnbounded)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

/// Pinned-snapshot fetch: the executor-side hot path (lookup + recency
/// bump + shared_ptr pin) on a store holding `range(1)` datasets.
void BM_Datastore_PinnedGet(benchmark::State& state) {
  Datastore store(nullptr);
  const int64_t datasets = state.range(1);
  for (int64_t i = 0; i < datasets; ++i) {
    (void)store.PutDataset("g" + std::to_string(i),
                           BenchGraph(state.range(0), 1));
  }
  uint64_t fetches = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(fetches % datasets);
    GraphPtr pinned = store.GetDataset(name).value();
    benchmark::DoNotOptimize(pinned);
    ++fetches;
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["datasets"] = static_cast<double>(datasets);
}
BENCHMARK(BM_Datastore_PinnedGet)
    ->Args({10000, 1})->Args({10000, 16})->Args({10000, 256});

/// Text-upload admission: parse + CSR build + byte accounting for an
/// n-node edge-list body, against a budget the upload always fits.
void BM_Datastore_UploadDatasetParse(benchmark::State& state) {
  std::string content;
  for (int64_t i = 0; i + 1 < state.range(0); ++i) {
    content += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  Datastore store(nullptr, GraphBudget(64u << 20));
  uint64_t uploads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.UploadDataset("g" + std::to_string(uploads++), content));
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["content_bytes"] = static_cast<double>(content.size());
}
BENCHMARK(BM_Datastore_UploadDatasetParse)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cyclerank
