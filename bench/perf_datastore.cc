// Storage-layer throughput: dataset upload (with and without eviction
// pressure), pinned snapshot fetches, the text-upload admission path, and
// the disk spill tier (evict→serialize→write demotions and miss→read→
// decode reloads, plus the raw graph codec). The PR-4 decomposition split
// the datastore into individually-locked stores; these sweeps bound the
// fixed cost of the byte-budgeted graph-store layer so retention never
// becomes the bottleneck of the upload/query hot paths — and put a number
// on what a spill round trip costs relative to re-running a kernel.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "datasets/generators.h"
#include "platform/datastore.h"

namespace cyclerank {
namespace {

GraphPtr BenchGraph(int64_t n, uint64_t seed) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = seed;
  return std::make_shared<Graph>(GenerateBarabasiAlbert(config).value());
}

PlatformOptions GraphBudget(size_t bytes) {
  PlatformOptions options;
  options.graph_store_bytes = bytes;
  return options;
}

/// Steady-state upload cost with eviction: the budget holds ~4 graphs, so
/// every further upload evicts the least-recently-queried one. Arg: nodes.
void BM_Datastore_UploadEvict(benchmark::State& state) {
  // A pool of pre-built graphs keeps graph construction out of the loop.
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(state.range(0), seed));
  }
  Datastore store(nullptr, GraphBudget(4 * pool[0]->MemoryBytes()));
  uint64_t uploads = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(uploads);
    benchmark::DoNotOptimize(
        store.PutDataset(name, pool[uploads % pool.size()]));
    ++uploads;
  }
  const GraphStoreStats stats = store.graph_store().stats();
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["graph_bytes"] = static_cast<double>(pool[0]->MemoryBytes());
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["store_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_Datastore_UploadEvict)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

/// Upload cost without a budget (the historical unbounded path), for the
/// eviction overhead delta. Every name is fresh — the map grows for the
/// run's duration, which is exactly what "unbounded" costs; entries share
/// the pooled graphs, so growth is index-only. Arg: nodes.
void BM_Datastore_UploadUnbounded(benchmark::State& state) {
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(state.range(0), seed));
  }
  Datastore store(nullptr);
  uint64_t uploads = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(uploads);
    benchmark::DoNotOptimize(
        store.PutDataset(name, pool[uploads % pool.size()]));
    ++uploads;
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Datastore_UploadUnbounded)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

/// Pinned-snapshot fetch: the executor-side hot path (lookup + recency
/// bump + shared_ptr pin) on a store holding `range(1)` datasets.
void BM_Datastore_PinnedGet(benchmark::State& state) {
  Datastore store(nullptr);
  const int64_t datasets = state.range(1);
  for (int64_t i = 0; i < datasets; ++i) {
    (void)store.PutDataset("g" + std::to_string(i),
                           BenchGraph(state.range(0), 1));
  }
  uint64_t fetches = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(fetches % datasets);
    GraphPtr pinned = store.GetDataset(name).value();
    benchmark::DoNotOptimize(pinned);
    ++fetches;
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["datasets"] = static_cast<double>(datasets);
}
BENCHMARK(BM_Datastore_PinnedGet)
    ->Args({10000, 1})->Args({10000, 16})->Args({10000, 256});

/// A fresh spill directory, wiped first. `BENCH_SPILL_DIR` overrides the
/// root (the smoke runner points it at a per-run temp dir).
std::string BenchSpillDir() {
  const char* override_root = std::getenv("BENCH_SPILL_DIR");
  const auto dir = override_root != nullptr
                       ? std::filesystem::path(override_root) / "spill"
                       : std::filesystem::temp_directory_path() /
                             "cyclerank_bench_spill";
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Raw graph codec: serialize + deserialize round trip, the CPU component
/// of every spill and reload. Arg: nodes.
void BM_Graph_CodecRoundTrip(benchmark::State& state) {
  const GraphPtr graph = BenchGraph(state.range(0), 1);
  for (auto _ : state) {
    const std::string bytes = graph->Serialize();
    benchmark::DoNotOptimize(Graph::Deserialize(bytes).value().num_edges());
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["encoded_bytes"] =
      static_cast<double>(graph->Serialize().size());
}
BENCHMARK(BM_Graph_CodecRoundTrip)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

/// Steady-state upload cost when eviction *demotes* to the disk tier:
/// every upload past the budget serializes the victim and writes one
/// spill file (plus manifest upkeep). The delta against
/// BM_Datastore_UploadEvict is the price of durability. Arg: nodes.
void BM_Datastore_SpillEvict(benchmark::State& state) {
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(state.range(0), seed));
  }
  PlatformOptions options = GraphBudget(4 * pool[0]->MemoryBytes());
  options.spill_dir = BenchSpillDir();
  // Bound the disk tier too, so the directory cannot grow for the whole
  // benchmark duration; pruning is part of the steady-state cost.
  options.graph_spill_bytes = 64u << 20;
  Datastore store(nullptr, options);
  uint64_t uploads = 0;
  for (auto _ : state) {
    const std::string name = "g" + std::to_string(uploads);
    benchmark::DoNotOptimize(
        store.PutDataset(name, pool[uploads % pool.size()]));
    ++uploads;
  }
  const SpillTierStats stats = store.dataset_spill()->stats();
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["spills"] = static_cast<double>(stats.spills);
  state.counters["disk_bytes"] = static_cast<double>(stats.bytes);
  state.counters["prunes"] = static_cast<double>(stats.prunes);
}
BENCHMARK(BM_Datastore_SpillEvict)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// Spill *reload*: every Get misses memory and promotes a spilled dataset
/// back in (read + checksum + decode + re-admit), demoting another in its
/// place — the worst-case thrash pattern, and still orders of magnitude
/// cheaper than recomputing a ranking. Arg: nodes.
void BM_Datastore_SpillReload(benchmark::State& state) {
  const GraphPtr a = BenchGraph(state.range(0), 0);
  const GraphPtr b = BenchGraph(state.range(0), 1);
  // The memory tier holds exactly one graph (the seeds generate slightly
  // different edge counts, so budget for the larger one).
  PlatformOptions options =
      GraphBudget(std::max(a->MemoryBytes(), b->MemoryBytes()));
  options.spill_dir = BenchSpillDir();
  Datastore store(nullptr, options);
  // Two datasets, one memory slot: alternating Gets always reload.
  (void)store.PutDataset("a", a);
  (void)store.PutDataset("b", b);
  uint64_t fetches = 0;
  for (auto _ : state) {
    GraphPtr pinned =
        store.GetDataset(fetches % 2 == 0 ? "a" : "b").value();
    benchmark::DoNotOptimize(pinned);
    ++fetches;
  }
  const SpillTierStats stats = store.dataset_spill()->stats();
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["reloads"] = static_cast<double>(stats.reloads);
}
BENCHMARK(BM_Datastore_SpillReload)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// Sorted-percentile helper for the tail-latency benchmarks.
double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

/// The PR-6 headline: Get tail latency *under eviction churn*. A background
/// thread uploads graphs through a 4-slot budget (every upload demotes a
/// victim to disk) while the measured thread issues Gets at a fixed arrival
/// rate and records each call's service time. With synchronous spilling
/// (arg 0 — the PR-5 baseline) the demotion's serialize+compress+write runs
/// inside the store's critical section and stalls concurrent Gets; with a
/// write-behind buffer (arg = buffer bytes) the upload enqueues and the
/// flush thread pays the IO off-lock. The p99 counter is the acceptance
/// metric. Args: {spill_write_behind_bytes, spill_compression} —
/// {0, 0} reproduces the PR-5 configuration exactly.
void BM_Datastore_ChurnGetTailLatency(benchmark::State& state) {
  std::vector<GraphPtr> pool;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    pool.push_back(BenchGraph(10000, seed));
  }
  PlatformOptions options = GraphBudget(4 * pool[0]->MemoryBytes());
  options.spill_dir = BenchSpillDir();
  options.graph_spill_bytes = 256u << 20;
  options.spill_write_behind_bytes = static_cast<size_t>(state.range(0));
  options.spill_compression = state.range(1) != 0;
  Datastore store(nullptr, options);
  for (size_t i = 0; i < 4; ++i) {
    (void)store.PutDataset("churn-" + std::to_string(i), pool[i]);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> latest{3};
  std::thread churner([&] {
    // Fixed 100 uploads/s — a provisioned churn rate the flush thread can
    // sustain, so write-behind measures steady state, not a saturated
    // buffer stalling every writer in backpressure.
    using Clock = std::chrono::steady_clock;
    constexpr auto kChurnPeriod = std::chrono::milliseconds(10);
    auto next_upload = Clock::now();
    uint64_t uploads = 4;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_until(next_upload);
      next_upload += kChurnPeriod;
      (void)store.PutDataset("churn-" + std::to_string(uploads),
                             pool[uploads % pool.size()]);
      latest.store(uploads, std::memory_order_relaxed);
      ++uploads;
    }
  });

  using Clock = std::chrono::steady_clock;
  constexpr auto kPeriod = std::chrono::microseconds(500);  // 2000 ops/s
  std::vector<double> samples;
  samples.reserve(10000);
  auto next_arrival = Clock::now();
  uint64_t fetches = 0;
  for (auto _ : state) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += kPeriod;
    // Target one of the most recent names: usually a memory hit, sometimes
    // just demoted (a buffer or disk reload) — the churn victim's profile.
    const uint64_t newest = latest.load(std::memory_order_relaxed);
    const std::string name =
        "churn-" + std::to_string(newest - (fetches++ % 3));
    const auto begin = Clock::now();
    benchmark::DoNotOptimize(store.GetDataset(name));
    samples.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - begin)
            .count());
  }
  stop.store(true);
  churner.join();

  state.counters["p50_us"] = Percentile(samples, 0.50);
  state.counters["p95_us"] = Percentile(samples, 0.95);
  state.counters["p99_us"] = Percentile(samples, 0.99);
  state.counters["write_behind_bytes"] = static_cast<double>(state.range(0));
  const SpillTierStats stats = store.dataset_spill()->stats();
  state.counters["spills"] = static_cast<double>(stats.spills);
  state.counters["reloads"] = static_cast<double>(stats.reloads);
  state.counters["buffer_hits"] = static_cast<double>(stats.buffer_hits);
  state.counters["backpressure_waits"] =
      static_cast<double>(stats.backpressure_waits);
}
BENCHMARK(BM_Datastore_ChurnGetTailLatency)
    ->Args({0, 0})          // PR-5 baseline: synchronous, uncompressed
    ->Args({32 << 20, 1})   // PR-6: 32 MiB write-behind + compression
    ->Iterations(4000)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// Cold-miss cost with the bloom key filter: every Get targets a key that
/// was never stored, so the filter answers from two cache lines and the
/// call must do zero filesystem probes. The `filter_rate` counter is the
/// acceptance check — 1.0 means every miss short-circuited.
void BM_SpillTier_ColdMissFilter(benchmark::State& state) {
  SpillTierOptions options;
  options.write_behind_bytes = 32u << 20;
  SpillTier tier(BenchSpillDir(), options, "dataset");
  for (int i = 0; i < 512; ++i) {
    (void)tier.Put("present-" + std::to_string(i), std::string(256, 'x'));
  }
  tier.Flush();
  uint64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tier.Get("never-stored-" + std::to_string(lookups++)));
  }
  const SpillTierStats stats = tier.stats();
  state.counters["filter_rate"] =
      lookups == 0 ? 1.0
                   : static_cast<double>(stats.filter_negatives) /
                         static_cast<double>(lookups);
  state.counters["exact_misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_SpillTier_ColdMissFilter);

/// Compression leverage on the spill path: one demote+reload round trip of
/// a CSR graph payload, compressed vs raw on disk. The bytes counters show
/// the on-disk footprint both ways. Arg: 1 = compressed.
void BM_SpillTier_CompressedRoundTrip(benchmark::State& state) {
  const GraphPtr graph = BenchGraph(10000, 1);
  const std::string payload = graph->Serialize();
  SpillTierOptions options;
  options.compression = state.range(0) != 0;
  SpillTier tier(BenchSpillDir(), options, "dataset");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tier.Put("g", payload));
    benchmark::DoNotOptimize(tier.Get("g"));
  }
  const SpillTierStats stats = tier.stats();
  state.counters["raw_bytes"] = static_cast<double>(stats.raw_bytes);
  state.counters["disk_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_SpillTier_CompressedRoundTrip)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Degraded-mode churn: the same Put+Get cycle against a healthy disk
/// (arg 0) and against a tier whose circuit breaker is open after a
/// persistent write failure (arg 1). The PR-8 acceptance point is that
/// degradation is a *fast* documented fallback, not a slow error path:
/// while the breaker is open every Put fast-fails in memory without
/// touching the (known-bad) disk, so the degraded row must be far cheaper
/// per op than the healthy one, with `breaker_rejects` accounting for
/// every skipped write and zero new spills. Arg: 1 = breaker open.
void BM_SpillTier_DegradedChurn(benchmark::State& state) {
  const bool degraded = state.range(0) != 0;
  FaultInjectingEnv env(Env::Default(), /*seed=*/1);
  SpillTierOptions options;
  options.env = &env;
  options.retry_limit = 0;            // single attempt: trips immediately
  options.retry_backoff_ms = 0;
  options.breaker_probe_ms = 600'000;  // no recovery probe during the run
  SpillTier tier(BenchSpillDir(), options, "dataset");
  const std::string payload(64u << 10, 'x');
  if (degraded) {
    EnvFault fault;
    fault.kind = EnvFault::Kind::kPersistent;
    fault.op = EnvOp::kWrite;
    env.AddFault(fault);
    (void)tier.Put("trip", payload);  // the failed write opens the breaker
  }
  const uint64_t spills_before = tier.stats().spills;
  uint64_t churns = 0;
  for (auto _ : state) {
    const std::string key = "churn-" + std::to_string(churns % 64);
    benchmark::DoNotOptimize(tier.Put(key, payload));
    benchmark::DoNotOptimize(tier.Get(key));
    ++churns;
  }
  const SpillTierStats stats = tier.stats();
  state.counters["breaker_open"] = stats.breaker_open ? 1.0 : 0.0;
  state.counters["breaker_rejects"] =
      static_cast<double>(stats.breaker_rejects);
  state.counters["spills"] =
      static_cast<double>(stats.spills - spills_before);
  state.counters["reloads"] = static_cast<double>(stats.reloads);
}
BENCHMARK(BM_SpillTier_DegradedChurn)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Text-upload admission: parse + CSR build + byte accounting for an
/// n-node edge-list body, against a budget the upload always fits.
void BM_Datastore_UploadDatasetParse(benchmark::State& state) {
  std::string content;
  for (int64_t i = 0; i + 1 < state.range(0); ++i) {
    content += std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  Datastore store(nullptr, GraphBudget(64u << 20));
  uint64_t uploads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.UploadDataset("g" + std::to_string(uploads++), content));
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["content_bytes"] = static_cast<double>(content.size());
}
BENCHMARK(BM_Datastore_UploadDatasetParse)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cyclerank
