// Experiment P1 — the paper's efficiency remark (§II: "PageRank can be
// computed in an iterative process ... however more efficient algorithms
// are available"): Personalized PageRank by full power iteration versus
// the local forward-push approximation versus Monte-Carlo random walks,
// with accuracy counters alongside the timings.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/forward_push.h"
#include "core/monte_carlo.h"
#include "core/pagerank.h"
#include "datasets/generators.h"

namespace cyclerank {
namespace {

Graph MakeGraph(int64_t n) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = 99;
  return GenerateBarabasiAlbert(config).value();
}

double L1Error(const std::vector<double>& a, const std::vector<double>& b) {
  double err = 0.0;
  for (size_t i = 0; i < a.size(); ++i) err += std::fabs(a[i] - b[i]);
  return err;
}

void BM_PPR_PowerIteration(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePersonalizedPageRank(g, 0));
  }
}
BENCHMARK(BM_PPR_PowerIteration)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PPR_ForwardPush(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  ForwardPushOptions options;
  options.epsilon = 1e-7;
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-12;
  const auto exact = ComputePersonalizedPageRank(g, 0, exact_options).value();
  double err = 0.0;
  for (auto _ : state) {
    auto result = ComputeForwardPushPpr(g, 0, options);
    err = L1Error(result->scores, exact.scores);
    benchmark::DoNotOptimize(result);
  }
  state.counters["l1_error"] = err;
}
BENCHMARK(BM_PPR_ForwardPush)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PPR_ForwardPush_EpsilonSweep(benchmark::State& state) {
  const Graph g = MakeGraph(10000);
  ForwardPushOptions options;
  options.epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  uint64_t pushes = 0;
  for (auto _ : state) {
    auto result = ComputeForwardPushPpr(g, 0, options);
    pushes = result->pushes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pushes"] = static_cast<double>(pushes);
}
BENCHMARK(BM_PPR_ForwardPush_EpsilonSweep)->DenseRange(4, 9);

void BM_PPR_MonteCarlo(benchmark::State& state) {
  const Graph g = MakeGraph(10000);
  MonteCarloOptions options;
  options.num_walks = static_cast<uint64_t>(state.range(0));
  options.seed = 5;
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-12;
  const auto exact = ComputePersonalizedPageRank(g, 0, exact_options).value();
  double err = 0.0;
  for (auto _ : state) {
    auto result = ComputeMonteCarloPpr(g, 0, options);
    err = L1Error(result->scores, exact.scores);
    benchmark::DoNotOptimize(result);
  }
  state.counters["l1_error"] = err;
}
BENCHMARK(BM_PPR_MonteCarlo)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_PPR_MonteCarlo_ThreadSweep(benchmark::State& state) {
  // Walk shards fan out on the shared compute pool; per-shard RNG streams
  // are derived from the seed, so the estimate is bit-identical across
  // every arg of this sweep.
  const Graph g = MakeGraph(10000);
  MonteCarloOptions options;
  options.num_walks = 500000;
  options.seed = 5;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMonteCarloPpr(g, 0, options));
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_PPR_MonteCarlo_ThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cyclerank
