// Ground-truth evaluation — the protocol of the CycleRank journal paper
// (Consonni et al. 2020), which the demo paper builds on: treat a curated
// set of related articles (there: Wikipedia "see also" links) as relevance
// labels and score each algorithm's ranking against them with retrieval
// metrics. Here the labels are the hand-curated topical clusters of the
// embedded corpora — the nodes a human editor would list as related.

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/algorithm.h"
#include "datasets/corpus.h"
#include "eval/relevance_metrics.h"

namespace cyclerank {
namespace {

struct Case {
  const char* dataset;
  const char* reference;
  uint32_t k;                              // CycleRank K
  std::vector<const char*> relevant;       // "see also" ground truth
};

const std::vector<Case>& Cases() {
  static const std::vector<Case>* cases = new std::vector<Case>{
      {"enwiki-mini-2018",
       "Freddie Mercury",
       3,
       {"Queen (band)", "Brian May", "Roger Taylor", "John Deacon",
        "Queen II", "Bohemian Rhapsody"}},
      {"enwiki-mini-2018",
       "Pasta",
       3,
       {"Italian cuisine", "Spaghetti", "Flour", "Durum", "Carbonara",
        "Bolognese sauce"}},
      {"amazon-books-mini",
       "1984",
       5,
       {"Animal Farm", "Fahrenheit 451", "Brave New World",
        "Lord of the Flies", "The Catcher in the Rye"}},
      {"amazon-books-mini",
       "The Fellowship of the Ring",
       5,
       {"The Hobbit", "The Two Towers", "The Return of the King",
        "The Silmarillion", "Unfinished Tales"}},
  };
  return *cases;
}

Result<Graph> LoadCorpus(const std::string& name) {
  if (name == "enwiki-mini-2018") return EnwikiMini();
  return AmazonBooksMini();
}

int RunEval() {
  std::puts(
      "Ground-truth evaluation (journal-paper protocol): retrieval metrics\n"
      "against curated 'related article' sets, per algorithm\n");

  const AlgorithmKind algorithms[] = {
      AlgorithmKind::kPersonalizedPageRank,
      AlgorithmKind::kPersonalizedCheiRank,
      AlgorithmKind::kPersonalized2DRank, AlgorithmKind::kCycleRank};

  // Aggregate mean metrics per algorithm across cases.
  std::printf("%-16s %-10s %-10s %-10s %-10s\n", "algorithm", "P@5", "NDCG@5",
              "MRR", "AP");
  for (AlgorithmKind kind : algorithms) {
    const auto algorithm = MakeAlgorithm(kind);
    double p5 = 0, ndcg5 = 0, mrr = 0, ap = 0;
    for (const Case& test_case : Cases()) {
      const auto graph = LoadCorpus(test_case.dataset);
      if (!graph.ok()) return 1;
      const Graph& g = graph.value();
      const NodeId ref = g.FindNode(test_case.reference);
      std::unordered_set<NodeId> relevant;
      for (const char* label : test_case.relevant) {
        const NodeId node = g.FindNode(label);
        if (node != kInvalidNode) relevant.insert(node);
      }
      AlgorithmRequest request;
      request.reference = ref;
      request.max_cycle_length = test_case.k;
      auto ranking = algorithm->Run(g, request);
      if (!ranking.ok()) return 1;
      // Drop the reference itself: it is the query, not a retrieved result.
      RankedList filtered;
      for (const ScoredNode& entry : *ranking) {
        if (entry.node != ref) filtered.push_back(entry);
      }
      p5 += PrecisionAtK(filtered, relevant, 5).value_or(0.0);
      ndcg5 += NdcgAtK(filtered, relevant, 5).value_or(0.0);
      mrr += ReciprocalRank(filtered, relevant);
      ap += AveragePrecision(filtered, relevant).value_or(0.0);
    }
    const double n = static_cast<double>(Cases().size());
    std::printf("%-16s %-10.3f %-10.3f %-10.3f %-10.3f\n",
                std::string(AlgorithmKindToString(kind)).c_str(), p5 / n,
                ndcg5 / n, mrr / n, ap / n);
  }

  std::puts(
      "\nShape check: CycleRank leads on AP and ties the best MRR; the\n"
      "cycle-respecting methods (cyclerank, pers_cheirank on these highly\n"
      "reciprocal corpora) stay inside the curated related-article sets,\n"
      "while Personalized PageRank trails on every metric because it\n"
      "admits globally popular but unrelated nodes — the paper's\n"
      "Tables I-II argument, quantified.");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunEval(); }
