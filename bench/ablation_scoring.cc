// Ablation A1 — CycleRank scoring functions. The paper: "for Wikipedia we
// have experimentally found that the best choice for the scoring function
// is an exponential damping σ = e^-n" (§II). This bench runs all four σ
// variants on the embedded corpora and reports (a) the top-5 lists and
// (b) rank-overlap against Personalized PageRank — showing that σ shifts
// the weight between tight 2-cycles and broader long-cycle context.

#include <cstdio>
#include <string>
#include <vector>

#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/corpus.h"
#include "eval/comparison.h"
#include "eval/rank_metrics.h"

namespace cyclerank {
namespace {

constexpr ScoringFunction kAllSigmas[] = {
    ScoringFunction::kExponential, ScoringFunction::kLinear,
    ScoringFunction::kQuadratic, ScoringFunction::kConstant};

int RunCase(const Graph& g, const std::string& dataset, const char* ref_label,
            uint32_t k) {
  const NodeId ref = g.FindNode(ref_label);
  if (ref == kInvalidNode) {
    std::fprintf(stderr, "missing reference '%s'\n", ref_label);
    return 1;
  }
  std::printf("dataset=%s  reference=%s  K=%u\n", dataset.c_str(), ref_label,
              k);

  PageRankOptions ppr_options;
  ppr_options.alpha = 0.85;
  const auto ppr = ComputePersonalizedPageRank(g, ref, ppr_options);
  if (!ppr.ok()) return 1;
  const RankedList ppr_ranking = ScoresToRankedList(ppr->scores);

  std::vector<ComparisonColumn> columns;
  for (ScoringFunction sigma : kAllSigmas) {
    CycleRankOptions options;
    options.max_cycle_length = k;
    options.scoring = sigma;
    const auto cr = ComputeCycleRank(g, ref, options);
    if (!cr.ok()) return 1;
    columns.push_back({std::string("sigma=") +
                           std::string(ScoringFunctionToString(sigma)),
                       ScoresToRankedList(cr->scores)});
  }

  ComparisonTableOptions table_options;
  table_options.top_k = 5;
  table_options.skip_node = ref;
  std::fputs(RenderComparisonTable(g, columns, table_options).c_str(), stdout);

  std::puts("  overlap with Personalized PageRank (top-10):");
  for (const ComparisonColumn& column : columns) {
    std::printf("    %-12s jaccard@10=%.3f  rbo=%.3f\n",
                column.header.c_str(),
                JaccardAtK(column.ranking, ppr_ranking, 10),
                RankBiasedOverlap(column.ranking, ppr_ranking).value_or(0.0));
  }
  std::puts("");
  return 0;
}

int RunAblation() {
  std::puts("Ablation A1: CycleRank scoring functions sigma(n)\n");
  const auto wiki = EnwikiMini();
  const auto amazon = AmazonBooksMini();
  if (!wiki.ok() || !amazon.ok()) return 1;
  if (RunCase(wiki.value(), "enwiki-mini-2018", "Freddie Mercury", 3)) return 1;
  if (RunCase(wiki.value(), "enwiki-mini-2018", "Pasta", 3)) return 1;
  if (RunCase(amazon.value(), "amazon-books-mini", "1984", 5)) return 1;
  std::puts(
      "Shape check: sigma=exp concentrates on reciprocal neighbours;\n"
      "sigma=const drifts toward high-cycle-volume nodes and agrees more\n"
      "with PPR — matching the paper's preference for exponential damping.");
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunAblation(); }
