// Experiment P3 — the frontier-parallel traversal engine (PR 3): the
// round-synchronous forward-push PPR and the level-synchronous BFS, swept
// over thread counts, against a legacy serial-deque forward push kept here
// as the baseline the 1-thread acceptance bound is measured against
// (outputs are bit-identical across the `threads` sweep by construction;
// benchmark JSON carries the push counts so schedule regressions show up
// as counter drift, not just time drift).

#include <benchmark/benchmark.h>

#include <deque>
#include <vector>

#include "core/forward_push.h"
#include "datasets/generators.h"
#include "graph/traversal.h"

namespace cyclerank {
namespace {

Graph MakeGraph(int64_t n) {
  BarabasiAlbertConfig config;
  config.num_nodes = static_cast<NodeId>(n);
  config.edges_per_node = 8;
  config.reciprocity = 0.3;
  config.seed = 99;
  return GenerateBarabasiAlbert(config).value();
}

/// The pre-PR-3 queue-carried (Gauss-Seidel) forward push, verbatim in
/// structure: the reference point for the "round-synchronous is no more
/// than ~10% slower serial" acceptance bound.
ForwardPushScores LegacyDequeForwardPush(const Graph& g, NodeId reference,
                                         const ForwardPushOptions& options) {
  const NodeId n = g.num_nodes();
  const double alpha = options.alpha;
  ForwardPushScores result;
  result.scores.assign(n, 0.0);
  std::vector<double> residual(n, 0.0);
  residual[reference] = 1.0;
  std::deque<NodeId> queue{reference};
  std::vector<bool> queued(n, false);
  queued[reference] = true;
  auto threshold = [&](NodeId u) {
    const uint32_t deg = g.OutDegree(u);
    return deg == 0 ? 0.0 : options.epsilon * static_cast<double>(deg);
  };
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = false;
    const double r_u = residual[u];
    if (r_u <= threshold(u) || r_u == 0.0) continue;
    ++result.pushes;
    residual[u] = 0.0;
    result.scores[u] += (1.0 - alpha) * r_u;
    const auto row = g.OutNeighbors(u);
    if (row.empty()) {
      residual[reference] += alpha * r_u;
      if (!queued[reference] && residual[reference] > threshold(reference)) {
        queue.push_back(reference);
        queued[reference] = true;
      }
      continue;
    }
    const double share = alpha * r_u / static_cast<double>(row.size());
    for (NodeId v : row) {
      residual[v] += share;
      if (!queued[v] && residual[v] > threshold(v)) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
  }
  double mass = 0.0;
  for (double r : residual) mass += r;
  result.residual_mass = mass;
  return result;
}

void BM_ForwardPush_LegacyDeque(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  ForwardPushOptions options;
  options.epsilon = 1e-7;
  uint64_t pushes = 0;
  for (auto _ : state) {
    const auto result = LegacyDequeForwardPush(g, 0, options);
    pushes = result.pushes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pushes"] = static_cast<double>(pushes);
}
BENCHMARK(BM_ForwardPush_LegacyDeque)->Arg(10000)->Arg(50000);

void BM_ForwardPush_RoundSync(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  ForwardPushOptions options;
  options.epsilon = 1e-7;
  options.num_threads = static_cast<uint32_t>(state.range(1));
  uint64_t pushes = 0;
  for (auto _ : state) {
    const auto result = ComputeForwardPushPpr(g, 0, options).value();
    pushes = result.pushes;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pushes"] = static_cast<double>(pushes);
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_ForwardPush_RoundSync)
    ->ArgsProduct({{10000, 50000}, {1, 2, 4, 8}});

void BM_FrontierBfs(benchmark::State& state) {
  const Graph g = MakeGraph(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BfsDistances(g, 0, Direction::kForward, kUnreachable, threads));
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FrontierBfs)->ArgsProduct({{50000, 200000}, {1, 2, 4, 8}});

void BM_FrontierBfs_Bounded(benchmark::State& state) {
  // CycleRank's pruning shape: a depth-bounded backward BFS.
  const Graph g = MakeGraph(50000);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BfsDistances(g, 0, Direction::kBackward, 4, threads));
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FrontierBfs_Bounded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cyclerank
