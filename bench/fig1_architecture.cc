// Experiment F1 — exercises the system architecture of the paper's
// Figure 1: Web-UI requests enter through the API gateway, the scheduler
// dispatches them to executor workers ("computational nodes... can be
// scaled up or down depending on the system's workload"), results and logs
// land in the datastore, and the status component reports progress.
//
// The bench sweeps the worker count and reports throughput and latency for
// a fixed mixed workload of query sets, demonstrating the scaling knob.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "datasets/catalog.h"
#include "platform/gateway.h"

namespace cyclerank {
namespace {

QuerySet MixedWorkload() {
  // One comparison in the spirit of Fig. 2: several algorithms across
  // catalog datasets. Tasks are sized to tens of milliseconds each so the
  // sweep measures scheduling across workers, not constant overheads.
  TaskBuilder builder;
  (void)builder.Add("twitter-cop27", "ppr_montecarlo",
                    "source=0, walks=400000, seed=1");
  (void)builder.Add("twitter-8m", "ppr_montecarlo",
                    "source=1, walks=400000, seed=2");
  (void)builder.Add("amazon-copurchase", "cyclerank", "source=0, k=4");
  (void)builder.Add("ba-1k", "cyclerank", "source=0, k=5");
  (void)builder.Add("wikilink-en-2018", "2drank",
                    "alpha=0.85, tolerance=1e-14");
  (void)builder.Add("wikilink-en-2018", "pagerank",
                    "alpha=0.95, tolerance=1e-14");
  (void)builder.Add("enwiki-mini-2018", "cyclerank",
                    "source=Freddie Mercury, k=3");
  (void)builder.Add("twitter-cop27", "pers_cheirank",
                    "source=0, tolerance=1e-14");
  return builder.Build();
}

int RunFig1() {
  std::puts(
      "Figure 1: platform architecture end-to-end "
      "(gateway -> scheduler -> executors -> datastore -> status)\n");
  std::puts(
      "workload: 12 query sets x 8 tasks (mixed algorithms & datasets)\n");

  // Warm the dataset cache so the sweep measures the pipeline, not the
  // first-touch generator cost.
  for (const char* name : {"enwiki-mini-2018", "amazon-copurchase",
                           "ba-1k", "wikilink-en-2018", "twitter-8m",
                           "twitter-cop27"}) {
    (void)DatasetCatalog::BuiltIn().Load(name);
  }

  std::printf("%-10s %-12s %-14s %-14s %-12s\n", "workers", "tasks/s",
              "total (ms)", "avg task (ms)", "completed");
  constexpr int kQuerySets = 12;

  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Datastore store;
    ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(workers, 99));

    WallTimer timer;
    std::vector<std::string> ids;
    for (int i = 0; i < kQuerySets; ++i) {
      auto id = gateway.SubmitQuerySet(MixedWorkload());
      if (!id.ok()) {
        std::fprintf(stderr, "submit: %s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(std::move(id).value());
    }
    size_t completed = 0;
    double task_seconds = 0.0;
    for (const std::string& id : ids) {
      (void)gateway.WaitForCompletion(id, 600.0);
      const auto results = gateway.GetResults(id);
      if (!results.ok()) continue;
      for (const TaskResult& result : results.value()) {
        if (result.status.ok()) {
          ++completed;
          task_seconds += result.seconds;
        }
      }
    }
    const double wall = timer.ElapsedSeconds();
    const size_t total_tasks = ids.size() * 8;
    std::printf("%-10zu %-12.1f %-14.0f %-14.1f %zu/%zu\n", workers,
                static_cast<double>(total_tasks) / wall, wall * 1000.0,
                task_seconds / static_cast<double>(completed) * 1000.0,
                completed, total_tasks);
  }

  std::printf(
      "\n(hardware threads available: %u)\n"
      "Shape check: on a multi-core host, throughput scales with the worker\n"
      "count until the longest single task dominates — the paper's\n"
      "'computational nodes can be scaled up or down' claim, measured. On a\n"
      "single-core host the sweep stays flat and per-task latency grows\n"
      "with oversubscription, which is itself the expected shape.\n",
      std::thread::hardware_concurrency());
  return 0;
}

}  // namespace
}  // namespace cyclerank

int main() { return cyclerank::RunFig1(); }
